"""Generic monotone-framework tests: the classic problem instances and the
solver's behaviour on irreducible graphs."""

import pytest

from repro.dataflow import GraphView, solve
from repro.dataflow.problems import (
    ALL,
    AvailableExpressions,
    CopyPropagation,
    LiveVariables,
    ReachingDefinitions,
)
from repro.dataflow.problems.available_exprs import expression_of
from repro.ir import BinOp, Const, IRBuilder, Var


def build_loop_fn():
    b = IRBuilder("f", ["n"])
    b.block("entry")
    b.assign("i", 0)
    b.assign("dead", 99)
    b.jump("head")
    b.block("head")
    b.binop("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.binop("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("i")
    return b.finish()


class TestLiveness:
    def test_loop_variables_live_at_head(self):
        fn = build_loop_fn()
        sol = solve(LiveVariables(), GraphView.from_function(fn))
        live_at_head = sol.value_out["head"]
        assert {"i", "n"} <= live_at_head
        assert "dead" not in live_at_head

    def test_nothing_live_after_exit(self):
        fn = build_loop_fn()
        sol = solve(LiveVariables(), GraphView.from_function(fn))
        assert sol.value_in["__exit__"] == frozenset()


class TestReachingDefinitions:
    def test_param_definition_reaches_uses(self):
        fn = build_loop_fn()
        view = GraphView.from_function(fn)
        problem = ReachingDefinitions(fn.params, view.cfg.entry)
        sol = solve(problem, view)
        assert ("__entry__", -1, "n") in sol.value_in["head"]

    def test_redefinition_kills(self):
        fn = build_loop_fn()
        view = GraphView.from_function(fn)
        sol = solve(ReachingDefinitions(fn.params, view.cfg.entry), view)
        # At `done`, i's reaching defs are the entry def and the body def.
        i_defs = {d for d in sol.value_in["done"] if d[2] == "i"}
        assert i_defs == {("entry", 0, "i"), ("body", 0, "i")}


class TestAvailableExpressions:
    def test_expression_canonicalization_commutes(self):
        a = expression_of(BinOp("x", "add", Var("a"), Var("b")))
        b = expression_of(BinOp("y", "add", Var("b"), Var("a")))
        assert a == b
        lt1 = expression_of(BinOp("x", "lt", Var("a"), Var("b")))
        lt2 = expression_of(BinOp("x", "lt", Var("b"), Var("a")))
        assert lt1 != lt2  # non-commutative

    def test_available_after_both_branches(self):
        b = IRBuilder("f", ["p", "a", "b"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.binop("x", "add", "a", "b")
        b.jump("join")
        b.block("r")
        b.binop("y", "add", "b", "a")
        b.jump("join")
        b.block("join")
        b.ret()
        fn = b.finish()
        sol = solve(AvailableExpressions(), GraphView.from_function(fn))
        expr = expression_of(BinOp("z", "add", Var("a"), Var("b")))
        assert expr in sol.value_in["join"]

    def test_killed_by_operand_redefinition(self):
        b = IRBuilder("f", ["a", "b"])
        b.block("entry")
        b.binop("x", "add", "a", "b")
        b.load("a", "m", 0)
        b.jump("next")
        b.block("next")
        b.ret()
        fn = b.finish()
        sol = solve(AvailableExpressions(), GraphView.from_function(fn))
        expr = expression_of(BinOp("z", "add", Var("a"), Var("b")))
        assert expr not in sol.value_in["next"]

    def test_top_is_all(self):
        assert AvailableExpressions().top() is ALL


class TestCopyPropagation:
    def test_copy_survives_straight_line(self):
        b = IRBuilder("f", ["a"])
        b.block("entry")
        b.assign("x", "a")
        b.jump("next")
        b.block("next")
        b.ret("x")
        fn = b.finish()
        sol = solve(CopyPropagation(), GraphView.from_function(fn))
        assert ("x", "a") in sol.value_in["next"]

    def test_copy_killed_on_either_side(self):
        b = IRBuilder("f", ["a"])
        b.block("entry")
        b.assign("x", "a")
        b.load("a", "m", 0)
        b.jump("next")
        b.block("next")
        b.ret("x")
        fn = b.finish()
        sol = solve(CopyPropagation(), GraphView.from_function(fn))
        assert ("x", "a") not in sol.value_in["next"]

    def test_must_semantics_at_merge(self):
        b = IRBuilder("f", ["p", "a", "b"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.assign("x", "a")
        b.jump("join")
        b.block("r")
        b.assign("x", "b")
        b.jump("join")
        b.block("join")
        b.ret("x")
        fn = b.finish()
        sol = solve(CopyPropagation(), GraphView.from_function(fn))
        assert sol.value_in["join"] == frozenset()


class TestSolverGenerality:
    def test_bad_direction_rejected(self):
        class Broken(LiveVariables):
            direction = "sideways"

        fn = build_loop_fn()
        with pytest.raises(ValueError):
            solve(Broken(), GraphView.from_function(fn))

    def test_irreducible_graph_converges(self):
        """The solver must handle irreducible graphs — the paper notes traced
        graphs are generally irreducible."""
        b = IRBuilder("f", ["p"])
        b.block("a")
        b.branch("p", "b", "c")
        b.block("b")
        b.assign("x", 1)
        b.branch("p", "c", "out")
        b.block("c")
        b.assign("y", 2)
        b.jump("b")
        b.block("out")
        b.ret("x")
        fn = b.finish()
        view = GraphView.from_function(fn)
        assert not view.cfg.is_reducible()
        sol = solve(LiveVariables(), view)  # must terminate
        assert "p" in sol.value_out["a"]

    def test_solution_is_fixpoint(self):
        fn = build_loop_fn()
        view = GraphView.from_function(fn)
        problem = LiveVariables()
        sol = solve(problem, view)
        # Re-applying the transfer changes nothing.
        for v in view.cfg.vertices:
            assert problem.transfer(v, view.block_of(v), sol.value_in[v]) == (
                sol.value_out[v]
            )


class TestEntryVertexWithPredecessors:
    """Regression: a start vertex with incoming edges (possible on hot-path
    graphs, where the analysis runs from a real block) must fold the back
    edge's contribution into its own input.  The old solver precomputed the
    start vertex's input from the boundary alone and never revisited it, so
    definitions flowing around a self-loop were dropped."""

    @staticmethod
    def _self_loop_view():
        from repro.ir.cfg import EXIT, Cfg

        b = IRBuilder("f", ["p"])
        b.block("loop")
        b.assign("x", 1)
        b.jump("loop")
        fn = b.finish()

        cfg = Cfg(entry="loop")
        cfg.add_vertex("loop")
        cfg.add_vertex(EXIT)
        cfg.add_edge("loop", "loop")
        cfg.add_edge("loop", EXIT)
        return fn, GraphView(cfg, fn.params, {"loop": fn.blocks["loop"]})

    def test_back_edge_reaches_entry_input(self):
        fn, view = self._self_loop_view()
        problem = ReachingDefinitions(fn.params, "loop")
        sol = solve(problem, view)
        # The boundary (parameter) definition...
        assert ("loop", -1, "p") in sol.value_in["loop"]
        # ...and the definition of x flowing around the self-loop.
        assert any(d[2] == "x" for d in sol.value_in["loop"])

    def test_entry_input_is_a_fixpoint(self):
        fn, view = self._self_loop_view()
        problem = ReachingDefinitions(fn.params, "loop")
        for strategy in ("rpo", "lifo", "round_robin"):
            sol = solve(problem, view, strategy=strategy)
            merged = problem.boundary()
            for p in view.cfg.preds("loop"):
                merged = problem.meet(merged, sol.value_out[p])
            assert problem.equal(merged, sol.value_in["loop"]), strategy
            assert problem.equal(
                problem.transfer("loop", view.block_of("loop"), merged),
                sol.value_out["loop"],
            ), strategy
