"""Differential parity for the dense Wegman–Zadek engine over the corpus.

The generic persistent-dict solver is the oracle; the compiled env-array
engine must be **bit-identical** to it on every graph it meets — decoded
environments, executable-edge sets, and the worklist's exact visit counts —
and the qualified pipeline it feeds must land on the same analyses on the
baseline CFG, the hot-path graph, and the reduced graph.

Fast tier: a hypothesis sample of random generator specs (shrinking yields
a minimal diverging program shape) plus registered smoke anchors.  Slow
tier: the full preset sweep including the 1k-vertex acceptance target, and
the registered SPEC95-alike workloads.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.qualified import run_qualified
from repro.dataflow import GraphView, analyze
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.profiles.path_profile import PathProfile
from repro.workloads.generate import (
    GEN_PRESETS,
    GeneratorSpec,
    generated_workload,
)
from repro.workloads.matrix import resolve_target
from repro.workloads.spec import WORKLOAD_NAMES

CA, CR = 0.97, 0.95


def assert_engines_agree(view, context=""):
    """The compiled engine must reproduce the generic result exactly."""
    g = analyze(view, engine="generic")
    c = analyze(view, engine="compiled")
    assert c.env_in == g.env_in, context
    assert c.executable_edges == g.executable_edges, context
    assert c.visits == g.visits, context
    assert c.visit_counts == g.visit_counts, context


def assert_analyses_match(a, b, context=""):
    if a is None or b is None:
        assert a is None and b is None, context
        return
    assert a.env_in == b.env_in, context
    assert a.executable_edges == b.executable_edges, context
    assert a.visits == b.visits, context
    assert a.visit_counts == b.visit_counts, context


def assert_workload_wz_parity(wl):
    """Engine parity on every routine: CFG view, HPG view, and the whole
    qualified pipeline run end-to-end under each engine."""
    module = compile_program(wl.source)
    train = Interpreter(module, profile_mode="bl", engine="compiled").run(
        wl.train_args, wl.train_inputs
    )
    for fname, fn in module.functions.items():
        assert_engines_agree(GraphView.from_function(fn), f"{fname}@cfg")

        profile = train.profiles.get(fname, PathProfile())
        qa_g = run_qualified(fn, profile, CA, CR, wz_engine="generic")
        qa_c = run_qualified(fn, profile, CA, CR, wz_engine="compiled")
        assert_analyses_match(qa_g.baseline, qa_c.baseline, f"{fname}@baseline")
        assert qa_g.hot_paths == qa_c.hot_paths, fname
        assert_analyses_match(
            qa_g.hpg_analysis, qa_c.hpg_analysis, f"{fname}@hpg"
        )
        assert_analyses_match(
            qa_g.reduced_analysis, qa_c.reduced_analysis, f"{fname}@reduced"
        )
        if qa_g.hpg is not None:
            # Same HPG view solved directly by both engines, so a divergence
            # points at the solver rather than at pipeline plumbing.
            assert_engines_agree(qa_g.hpg.view(), f"{fname}@hpg-view")


#: Small random shapes: branches, loops, merges, calls — enough to exercise
#: every micro-op and the executable-edge discovery, fast enough to sample.
gen_specs = st.builds(
    GeneratorSpec,
    seed=st.integers(min_value=0, max_value=2**16),
    funcs=st.integers(min_value=1, max_value=2),
    blocks_per_func=st.integers(min_value=8, max_value=24),
    loop_depth=st.integers(min_value=1, max_value=2),
    branch_density=st.sampled_from([0.0, 0.3, 0.6, 1.0]),
    correlation=st.sampled_from([0.0, 0.5, 0.9, 1.0]),
    hot_skew=st.sampled_from([0.5, 0.85, 1.0]),
    data_size=st.just(64),
    train_iters=st.integers(min_value=2, max_value=6),
    ref_iters=st.just(8),
)


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=gen_specs)
def test_random_generated_programs_hold_wz_parity(spec):
    assert_workload_wz_parity(generated_workload(spec))


def test_gen_small_preset_wz_parity():
    assert_workload_wz_parity(
        generated_workload(GEN_PRESETS["gen-small"], "gen-small")
    )


def test_sieve_wz_parity():
    """A registered hand-written target stays in the fast tier."""
    assert_workload_wz_parity(resolve_target("sieve"))


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(GEN_PRESETS))
def test_preset_wz_parity_sweep(name):
    """Every preset — including the 1k-vertex acceptance target — holds
    engine parity on both views and through the qualified pipeline."""
    assert_workload_wz_parity(generated_workload(GEN_PRESETS[name], name))


@pytest.mark.slow
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_registered_workload_wz_parity(name):
    assert_workload_wz_parity(resolve_target(name))
