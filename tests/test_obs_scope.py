"""Request-scoped observability: contextvar isolation and drain semantics.

Two properties carry the daemon's observability story:

* **isolation** — two interleaved request scopes (threads) see only their
  own tracer/registry through :func:`get_tracer`/:func:`get_metrics`, so
  their span trees are disjoint and their counters independent;
* **conservation** — on scope exit the captured spans/metrics drain into
  the ambient (usually global) sinks, so per-request counts sum exactly to
  the process totals ``/metrics`` reports.
"""

from __future__ import annotations

import threading

from repro.dataflow import wz_engine_scope
from repro.dataflow.wegman_zadek import get_default_wz_engine
from repro.obs import (
    MetricsRegistry,
    Tracer,
    capture,
    get_metrics,
    get_tracer,
    request_scope,
)


def test_scope_overrides_ambient_and_restores():
    with capture() as (global_tracer, global_registry):
        assert get_tracer() is global_tracer
        with request_scope(drain=False) as (tracer, registry):
            assert get_tracer() is tracer and tracer is not global_tracer
            assert get_metrics() is registry and registry is not global_registry
        assert get_tracer() is global_tracer
        assert get_metrics() is global_registry


def test_interleaved_scopes_have_disjoint_span_trees():
    """Two threads trace concurrently; neither sees the other's spans, and
    each scope's tree is rooted only in its own request."""
    barrier = threading.Barrier(2, timeout=30)
    trees: dict[str, list] = {}

    def request(name: str):
        with request_scope(drain=False) as (tracer, _):
            with get_tracer().span(f"request.{name}") as root:
                barrier.wait()  # both requests are now mid-span
                with get_tracer().span(f"stage.{name}.inner"):
                    barrier.wait()
                root.set(owner=name)
            trees[name] = tracer.spans()

    threads = [
        threading.Thread(target=request, args=(name,)) for name in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    names_a = {s.name for s in trees["a"]}
    names_b = {s.name for s in trees["b"]}
    assert names_a == {"request.a", "stage.a.inner"}
    assert names_b == {"request.b", "stage.b.inner"}
    assert not (names_a & names_b)


def test_drained_metrics_sum_to_global_snapshot():
    with capture() as (_, global_registry):
        per_request = []

        def request(n: int):
            with request_scope() as (_, registry):  # drain=True default
                get_metrics().counter("work_items").inc(n)
                get_metrics().counter("requests").inc()
            per_request.append(registry.snapshot())

        threads = [
            threading.Thread(target=request, args=(n,)) for n in (3, 5, 7)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        total = global_registry.snapshot()["counters"]
        summed: dict = {}
        for snap in per_request:
            for key, value in snap["counters"].items():
                summed[key] = summed.get(key, 0) + value
        assert total == summed
        assert total[("work_items", ())] == 15
        assert total[("requests", ())] == 3


def test_drained_spans_land_in_ambient_tracer():
    with capture() as (global_tracer, _):
        with request_scope() as (scoped, _):
            with get_tracer().span("request.body"):
                pass
        assert "request.body" in {s.name for s in global_tracer.spans()}
        # ... and were *moved*, not copied: the scope gave them up.
        assert not scoped.spans()


def test_drain_happens_on_exception_too():
    with capture() as (_, global_registry):
        try:
            with request_scope():
                get_metrics().counter("failed_requests").inc()
                raise RuntimeError("request blew up")
        except RuntimeError:
            pass
        counters = global_registry.snapshot()["counters"]
        assert counters[("failed_requests", ())] == 1


def test_drain_false_leaves_ambient_untouched():
    with capture() as (global_tracer, global_registry):
        with request_scope(drain=False):
            with get_tracer().span("private"):
                get_metrics().counter("private_count").inc()
        assert not global_tracer.spans()
        assert global_registry.snapshot()["counters"] == {}


def test_explicit_sinks_can_drain_anywhere():
    """The daemon pattern: drain into a service-owned registry while the
    process global stays disabled."""
    service_registry = MetricsRegistry(enabled=True)
    scoped_registry = MetricsRegistry()
    with request_scope(Tracer(), scoped_registry, drain=False):
        get_metrics().counter("cache_hits", kind="module").inc(2)
    service_registry.merge_snapshot(scoped_registry.snapshot())
    service_registry.merge_snapshot(scoped_registry.snapshot())  # 2nd request
    counters = service_registry.snapshot()["counters"]
    assert counters[("cache_hits", (("kind", "module"),))] == 4
    assert get_metrics().enabled is False  # ambient never turned on


def test_workload_pipeline_lands_in_request_scope():
    """Real pipeline stages (not synthetic spans) respect the scope: a run
    executed inside a request records its stage spans and pipeline counters
    there, and they drain upward intact."""
    from repro.pipeline import ArtifactCache
    from repro.pipeline.cached_run import make_run
    from repro.workloads.matrix import resolve_target

    with capture() as (global_tracer, global_registry):
        with request_scope() as (tracer, registry):
            run = make_run(resolve_target("gen-small"), ArtifactCache())
            run.aggregate_classification(0.97, 0.95)
            scoped_names = {s.name for s in tracer.spans()}
            scoped_counters = dict(registry.snapshot()["counters"])
        assert {"workload.compile", "workload.train_run", "workload.qualify"} <= scoped_names
        assert any(name == "cache_misses" for (name, _) in scoped_counters)
        # Outside the scope nothing leaked while it was open; after drain the
        # global tracer holds the same span set.
        global_names = {s.name for s in global_tracer.spans()}
        assert scoped_names <= global_names
        merged = global_registry.snapshot()["counters"]
        for key, value in scoped_counters.items():
            assert merged[key] == value


def test_engine_scopes_are_thread_local():
    """The engine-default scopes ride the same contextvar machinery: one
    thread's override never bleeds into a concurrently running request."""
    barrier = threading.Barrier(2, timeout=30)
    seen: dict[str, str] = {}

    def request(name: str, engine: str):
        with wz_engine_scope(engine):
            barrier.wait()
            seen[name] = get_default_wz_engine()
            barrier.wait()

    threads = [
        threading.Thread(target=request, args=("a", "generic")),
        threading.Thread(target=request, args=("b", "compiled")),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert seen == {"a": "generic", "b": "compiled"}
    assert get_default_wz_engine() == "auto"  # main thread untouched
