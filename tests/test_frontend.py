"""MiniC front-end tests: lexer, parser, semantic checks, and lowering
(lowering correctness is checked by executing the compiled program)."""

import pytest

from repro.frontend import MiniCError, compile_program, parse_program, tokenize
from repro.interp import run_module
from repro.ir import validate_module


def run_src(src, args=(), inputs=None):
    module = compile_program(src)
    validate_module(module)
    return run_module(module, args=args, inputs=inputs, profile_mode=None)


class TestLexer:
    def test_keywords_vs_identifiers(self):
        kinds = [t.kind for t in tokenize("if iffy var variable")]
        assert kinds == ["if", "ident", "var", "ident", "eof"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_comments_skipped(self):
        kinds = [t.kind for t in tokenize("a // comment\nb /* multi\nline */ c")]
        assert kinds == ["ident", "ident", "ident", "eof"]

    def test_multichar_operators_maximal_munch(self):
        kinds = [t.kind for t in tokenize("a <= b << c == d")]
        assert "<=" in kinds and "<<" in kinds and "==" in kinds

    def test_bad_character(self):
        with pytest.raises(MiniCError):
            tokenize("a ? b")


class TestParser:
    def test_precedence_mul_over_add(self):
        result = run_src("func main() { return 2 + 3 * 4; }")
        assert result.return_value == 14

    def test_parentheses(self):
        assert run_src("func main() { return (2 + 3) * 4; }").return_value == 20

    def test_unary_binds_tighter(self):
        assert run_src("func main() { return -2 * 3; }").return_value == -6

    def test_comparison_chain_via_logic(self):
        src = "func main(x) { if (x >= 2 && x <= 5) { return 1; } return 0; }"
        assert run_src(src, args=[3]).return_value == 1
        assert run_src(src, args=[9]).return_value == 0

    def test_else_if_chain(self):
        src = """
        func main(x) {
          if (x == 0) { return 10; }
          else if (x == 1) { return 20; }
          else { return 30; }
        }
        """
        assert run_src(src, args=[0]).return_value == 10
        assert run_src(src, args=[1]).return_value == 20
        assert run_src(src, args=[7]).return_value == 30

    @pytest.mark.parametrize(
        "bad",
        [
            "func main() { return 1 + ; }",
            "func main() { if (1) return 2; }",  # missing braces
            "func main( { }",
            "global a[];",
            "func main() { x; }",  # bare identifier
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(MiniCError):
            parse_program(bad)


class TestSema:
    @pytest.mark.parametrize(
        "bad,msg",
        [
            ("func f() { return 0; }", "main"),
            ("func main() { x = 1; }", "undeclared"),
            ("func main() { return y; }", "undeclared"),
            ("func main() { var a = 1; var a = 2; }", "redeclaration"),
            ("func main(a, a) { }", "duplicate parameter"),
            ("func main() { break; }", "break outside"),
            ("func main() { continue; }", "continue outside"),
            ("func main() { return g(); }", "unknown function"),
            ("func main() { return abs(1, 2); }", "expects 1"),
            ("func main() { return q[0]; }", "unknown array"),
            ("func main() { q[0] = 1; }", "unknown array"),
            ("global a[4]; global a[4]; func main() { }", "duplicate global"),
            ("global a[0]; func main() { }", "non-positive"),
            ("global a[2] = {1,2,3}; func main() { }", "initialized with 3"),
            ("func main() { return 1; var x; }", "unreachable"),
            ("global a[4]; func main(a) { }", "collides"),
            ("func abs(x) { } func main() { }", "duplicate function"),
        ],
    )
    def test_semantic_errors(self, bad, msg):
        with pytest.raises(MiniCError, match=msg):
            compile_program(bad)

    def test_var_visible_after_declaration_only(self):
        with pytest.raises(MiniCError, match="undeclared"):
            compile_program("func main() { x = 1; var x; }")


class TestLoweringSemantics:
    def test_while_loop(self):
        src = """
        func main(n) {
          var i = 0;
          var s = 0;
          while (i < n) { s = s + i; i = i + 1; }
          return s;
        }
        """
        assert run_src(src, args=[5]).return_value == 10

    def test_for_loop_with_step(self):
        src = """
        func main(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 2) { s = s + 1; }
          return s;
        }
        """
        assert run_src(src, args=[10]).return_value == 5

    def test_break_and_continue(self):
        src = """
        func main(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 1) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            s = s + i;
          }
          return s;
        }
        """
        # 0+1+2+4+5 = 12
        assert run_src(src, args=[100]).return_value == 12

    def test_continue_in_while_reaches_condition(self):
        src = """
        func main(n) {
          var i = 0;
          var s = 0;
          while (i < n) {
            i = i + 1;
            if (i % 2 == 0) { continue; }
            s = s + i;
          }
          return s;
        }
        """
        assert run_src(src, args=[6]).return_value == 1 + 3 + 5

    def test_short_circuit_and_skips_rhs(self):
        src = """
        global touched[1];
        func side() { touched[0] = 1; return 1; }
        func main(x) {
          var r = x > 0 && side() == 1;
          return r * 10 + touched[0];
        }
        """
        assert run_src(src, args=[0]).return_value == 0  # side() not called
        assert run_src(src, args=[1]).return_value == 11

    def test_short_circuit_or_skips_rhs(self):
        src = """
        global touched[1];
        func side() { touched[0] = 1; return 0; }
        func main(x) {
          var r = x > 0 || side() == 1;
          return r * 10 + touched[0];
        }
        """
        assert run_src(src, args=[5]).return_value == 10  # side() not called
        # lhs false: side() runs (touched=1) and the || yields 0.
        assert run_src(src, args=[0]).return_value == 1

    def test_logic_result_normalized_to_0_1(self):
        src = "func main(x) { var r = x && 7; return r; }"
        assert run_src(src, args=[3]).return_value == 1

    def test_missing_return_yields_zero(self):
        assert run_src("func main() { var x = 5; }").return_value == 0

    def test_return_without_value_yields_zero(self):
        assert run_src("func main() { return; }").return_value == 0

    def test_recursion(self):
        src = """
        func fib(n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        func main(n) { return fib(n); }
        """
        assert run_src(src, args=[10]).return_value == 55

    def test_builtins(self):
        src = """
        func main() {
          return abs(-4) + min2(2, 9) + max2(2, 9) + clamp(15, 0, 10);
        }
        """
        assert run_src(src).return_value == 4 + 2 + 9 + 10

    def test_globals_and_stores(self):
        src = """
        global a[4] = {10, 20, 30, 40};
        func main() {
          a[1] = a[0] + a[2];
          return a[1];
        }
        """
        assert run_src(src).return_value == 40

    def test_print_output_order(self):
        src = """
        func main() {
          print(1, 2);
          print(3);
          return 0;
        }
        """
        assert run_src(src).output == [(1, 2), (3,)]

    def test_nested_loops(self):
        src = """
        func main(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 1) {
            for (var j = 0; j < i; j = j + 1) {
              s = s + 1;
            }
          }
          return s;
        }
        """
        assert run_src(src, args=[5]).return_value == 10

    def test_if_with_both_branches_returning(self):
        src = """
        func main(x) {
          if (x > 0) { return 1; } else { return 2; }
        }
        """
        assert run_src(src, args=[1]).return_value == 1
        assert run_src(src, args=[-1]).return_value == 2

    def test_compiled_ir_validates(self):
        src = """
        global g[8];
        func helper(a) { return a * 2; }
        func main(n) {
          var t = 0;
          while (t < n && g[t] >= 0) { g[t] = helper(t); t = t + 1; }
          return t;
        }
        """
        validate_module(compile_program(src))
