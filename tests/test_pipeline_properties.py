"""Cross-cutting properties of the full pipeline, checked on randomly
generated MiniC programs: semantics preservation through trace → reduce →
fold → DCE, profile-translation weight conservation, and the qualified
solution never being less precise than the baseline.

This is the reproduction's strongest evidence: for *any* program the
generator can express, the paper's transformation stack must not change
observable behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_qualified
from repro.dataflow.lattice import leq_env, meet_env, UNREACHABLE
from repro.frontend import compile_program
from repro.interp import Interpreter, run_module
from repro.ir import validate_module
from repro.opt import eliminate_dead_code, materialize


@st.composite
def minic_programs(draw):
    """A random MiniC `main(a, b)` built from nested ifs and bounded loops
    over two scalar inputs and one input array."""
    rng_depth = draw(st.integers(1, 3))
    lines: list[str] = []
    declared = ["a", "b"]
    protected: set[str] = set()  # active loop counters; never reassigned
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        name = f"v{counter[0]}"
        return name

    def expr() -> str:
        choices = ["const", "var", "binop", "load"]
        kind = draw(st.sampled_from(choices))
        if kind == "const":
            return str(draw(st.integers(-4, 9)))
        if kind == "var":
            return draw(st.sampled_from(declared))
        if kind == "load":
            idx = draw(st.sampled_from(declared + ["3"]))
            return f"data[({idx}) & 7]"  # & keeps indexes non-negative
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({expr()} {op} {expr()})"

    def emit_block(depth: int, indent: str) -> None:
        n_stmts = draw(st.integers(1, 3))
        for _ in range(n_stmts):
            kind = draw(
                st.sampled_from(
                    ["decl", "assign", "if", "loop", "print"]
                    if depth > 0
                    else ["decl", "assign", "print"]
                )
            )
            if kind == "decl":
                name = fresh()
                lines.append(f"{indent}var {name} = {expr()};")
                declared.append(name)
            elif kind == "assign":
                assignable = [v for v in declared if v not in protected]
                if not assignable:
                    continue
                name = draw(st.sampled_from(assignable))
                lines.append(f"{indent}{name} = {expr()};")
            elif kind == "print":
                lines.append(f"{indent}print({expr()});")
            elif kind == "if":
                lines.append(f"{indent}if ({expr()} > {expr()}) {{")
                mark = len(declared)
                emit_block(depth - 1, indent + "  ")
                del declared[mark:]  # conditional decls may never execute
                if draw(st.booleans()):
                    lines.append(f"{indent}}} else {{")
                    emit_block(depth - 1, indent + "  ")
                    del declared[mark:]
                lines.append(f"{indent}}}")
            else:  # bounded loop
                i = fresh()
                declared.append(i)
                protected.add(i)  # clobbering the counter could diverge
                bound = draw(st.integers(1, 4))
                lines.append(
                    f"{indent}for (var {i} = 0; {i} < {bound}; {i} = {i} + 1) {{"
                )
                mark = len(declared)
                emit_block(depth - 1, indent + "  ")
                del declared[mark:]  # body decls may never execute
                protected.discard(i)
                lines.append(f"{indent}}}")

    emit_block(rng_depth, "  ")
    body = "\n".join(lines)
    ret = draw(st.sampled_from(declared))
    source = (
        "global data[8];\n"
        f"func main(a, b) {{\n{body}\n  return {ret} % 997;\n}}\n"
    )
    args = (draw(st.integers(0, 7)), draw(st.integers(0, 7)))
    data = [draw(st.integers(-3, 6)) for _ in range(8)]
    return source, args, data


@given(minic_programs(), st.sampled_from([0.75, 0.97, 1.0]))
@settings(max_examples=15, deadline=None)
def test_pipeline_preserves_semantics(program, ca):
    source, args, data = program
    module = compile_program(source)
    validate_module(module)
    inputs = {"data": data}
    baseline = Interpreter(module, profile_mode="bl").run(args, inputs)
    qa = run_qualified(
        module.function("main"), baseline.profiles["main"], ca=ca
    )
    if not qa.traced:
        return
    optimized = materialize(qa.reduced, qa.reduced_analysis, fold=True)
    eliminate_dead_code(optimized)
    new_module = module.copy()
    del new_module.functions["main"]
    new_module.add_function(optimized)
    validate_module(new_module)
    result = run_module(new_module, args=args, inputs=inputs, profile_mode=None)
    assert result.output == baseline.output
    assert result.return_value == baseline.return_value


@given(minic_programs())
@settings(max_examples=10, deadline=None)
def test_profile_translation_conserves_weight(program):
    source, args, data = program
    module = compile_program(source)
    run = Interpreter(module, profile_mode="bl").run(args, {"data": data})
    qa = run_qualified(module.function("main"), run.profiles["main"], ca=1.0)
    if not qa.traced:
        return
    profile = run.profiles["main"]
    assert qa.hpg_profile.total_count == profile.total_count
    assert qa.reduced_profile.total_count == profile.total_count
    sizes = qa.block_sizes
    orig_weight = profile.total_instructions(sizes)
    hpg_sizes = {v: sizes.get(v[0], 0) for v in qa.hpg.cfg.vertices}
    red_sizes = {v: sizes.get(v[0], 0) for v in qa.reduced.cfg.vertices}
    assert qa.hpg_profile.total_instructions(hpg_sizes) == orig_weight
    assert qa.reduced_profile.total_instructions(red_sizes) == orig_weight


@given(minic_programs())
@settings(max_examples=10, deadline=None)
def test_qualified_never_less_precise_than_baseline(program):
    """§1.1: the qualified solution is never lower in the lattice.  We check
    the per-vertex corollary: the meet of the qualified solutions over v's
    executable duplicates is >= the baseline solution at v."""
    source, args, data = program
    module = compile_program(source)
    run = Interpreter(module, profile_mode="bl").run(args, {"data": data})
    qa = run_qualified(module.function("main"), run.profiles["main"], ca=1.0)
    if not qa.traced:
        return
    for v in qa.cfg.vertices:
        duplicates = qa.hpg.duplicates(v)
        if not duplicates:
            continue
        met = UNREACHABLE
        for dup in duplicates:
            met = meet_env(met, qa.hpg_analysis.input_env(dup))
        assert leq_env(qa.baseline.input_env(v), met), v


@given(minic_programs())
@settings(max_examples=10, deadline=None)
def test_profilers_agree_on_random_programs(program):
    source, args, data = program
    module = compile_program(source)
    run = Interpreter(module, profile_mode="both").run(args, {"data": data})
    assert run.profiles == run.trace_profiles
