"""Abstract transfer functions vs. concrete execution.

For any straight-line block and any concrete entry state, the abstract
transfer over an environment that maps each variable to its concrete value
must predict exactly the values the interpreter computes.  This pins the
folding machinery to the interpreter: they can never disagree on
arithmetic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import ConstEnv
from repro.dataflow.transfer import transfer_instr
from repro.interp import run_module
from repro.ir import IRBuilder, Module
from repro.ir.ops import BINOPS, UNOPS

_VARS = ["a", "b", "c"]


@st.composite
def straightline_blocks(draw):
    """(instructions-spec, initial values) for a random pure block."""
    init = {v: draw(st.integers(-20, 20)) for v in _VARS}
    n = draw(st.integers(1, 8))
    instrs = []
    for _ in range(n):
        dest = draw(st.sampled_from(_VARS))
        kind = draw(st.sampled_from(["assign", "binop", "unop"]))

        def operand():
            if draw(st.booleans()):
                return draw(st.integers(-20, 20))
            return draw(st.sampled_from(_VARS))

        if kind == "assign":
            instrs.append(("assign", dest, operand()))
        elif kind == "binop":
            op = draw(st.sampled_from(sorted(BINOPS)))
            instrs.append(("binop", dest, op, operand(), operand()))
        else:
            op = draw(st.sampled_from(sorted(UNOPS)))
            instrs.append(("unop", dest, op, operand()))
    return instrs, init


@given(straightline_blocks())
@settings(max_examples=200, deadline=None)
def test_abstract_transfer_predicts_execution(case):
    instr_specs, init = case

    # Build the function: seed the variables, run the block, return nothing.
    b = IRBuilder("main")
    b.block("entry")
    for var, value in init.items():
        b.assign(var, value)
    for spec in instr_specs:
        if spec[0] == "assign":
            b.assign(spec[1], spec[2])
        elif spec[0] == "binop":
            b.binop(spec[1], spec[2], spec[3], spec[4])
        else:
            b.unop(spec[1], spec[2], spec[3])
    b.ret(0)
    fn = b.finish()
    module = Module()
    module.add_function(fn)

    # Concrete: interpret and collect each site's observed value.
    result = run_module(module, profile_mode=None)
    observed = {
        idx: stats.observed[0]
        for (name, label, idx), stats in result.site_stats.items()
    }

    # Abstract: walk the same block with the transfer functions.
    env = ConstEnv()
    for idx, instr in enumerate(fn.blocks["entry"].instrs):
        env, value = transfer_instr(instr, env)
        assert isinstance(value, int), (idx, instr)
        assert value == observed[idx], (idx, instr)
