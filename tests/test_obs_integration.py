"""Integration tests: the observability subsystem against the real pipeline.

Three contracts:

* a full :class:`CachedWorkloadRun` emits the expected stage-span tree
  (harness stages, nested qualification phases, cache lookups);
* the cache surfaces cold / warm / corrupt behavior through counters;
* metrics merged from parallel worker processes equal the serial totals —
  the fan-out/merge machinery loses and double-counts nothing.
"""

from __future__ import annotations

import collections
import concurrent.futures

from repro.evaluation.harness import WorkloadRun
from repro.obs import (
    MetricsRegistry,
    Tracer,
    capture,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.pipeline import ArtifactCache, CachedWorkloadRun, ParallelDriver
from repro.workloads import get_workload

CA, CR = 0.97, 0.95

#: Expected harness stage spans for a classified workload run.
STAGE_SPANS = {
    "workload.compile",
    "workload.train_run",
    "workload.ref_run",
    "workload.qualify",
    "workload.classify",
}

#: Expected qualification-phase spans nested under ``workload.qualify``.
QUALIFY_PHASES = {
    "qualified.baseline",
    "qualified.automaton",
    "qualified.tracing",
    "qualified.profile_translation",
    "qualified.hpg_analysis",
    "qualified.reduction",
    "qualified.reduced_analysis",
}


def _counter(snapshot, name, **labels):
    key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
    return snapshot["counters"].get(key, 0)


class TestStageSpanTree:
    def test_cached_run_emits_expected_tree(self, tmp_path):
        with capture() as (tracer, registry):
            run = CachedWorkloadRun(
                get_workload("compress95"), ArtifactCache(tmp_path)
            )
            run.aggregate_classification(CA, CR)

        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        names = {s.name for s in spans}
        assert STAGE_SPANS <= names
        assert QUALIFY_PHASES <= names

        # Qualification phases nest under the qualify stage (through the
        # cache.memo lookup span that computed the artifact).
        qualify = next(s for s in spans if s.name == "workload.qualify")

        def ancestors(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                yield span

        for span in spans:
            if span.name in QUALIFY_PHASES:
                assert qualify in ancestors(span), span.name

        # Cache lookups nest under the stage that asked for the artifact.
        memo_parents = {
            s.attrs["kind"]: by_id[s.parent_id].name
            for s in spans
            if s.name == "cache.memo"
        }
        assert memo_parents["module"] == "workload.compile"
        assert memo_parents["train-run"] == "workload.train_run"
        assert memo_parents["ref-run"] == "workload.ref_run"
        assert memo_parents["qualified"] == "workload.qualify"

        # timings stays a per-stage view derived from the same spans.
        assert set(run.timings) == {"compile", "train_run", "ref_run"}
        assert all(v > 0 for v in run.timings.values())

        # The run also recorded solver and interpreter activity.
        snap = registry.snapshot()
        assert _counter(snap, "interp_runs", engine="compiled") == 2
        assert _counter(snap, "wz_analyses") > 0

    def test_parallel_sweep_merges_worker_spans(self, tmp_path):
        with capture() as (tracer, _):
            ParallelDriver(jobs=2, cache_dir=tmp_path).sweep(
                ("compress95",), (0.0, CA)
            )
        spans = tracer.spans()
        sweep = next(s for s in spans if s.name == "driver.sweep")
        cells = [s for s in spans if s.name == "driver.cell"]
        assert len(cells) == 2
        # Worker roots were re-parented under the submitting sweep span.
        assert all(c.parent_id == sweep.span_id for c in cells)
        # Worker-side stage spans came along too.
        assert {s.name for s in spans} >= {"workload.compile", "cache.memo"}


class TestCacheCounters:
    def test_cold_warm_and_corrupt(self, tmp_path):
        workload = get_workload("compress95")

        with capture() as (_, registry):
            CachedWorkloadRun(workload, ArtifactCache(tmp_path))
        cold = registry.snapshot()
        for kind in ("module", "train-run", "ref-run"):
            assert _counter(cold, "cache_misses", kind=kind) == 1
            assert _counter(cold, "cache_stores", kind=kind) == 1
            assert _counter(cold, "cache_store_bytes", kind=kind) > 0

        with capture() as (_, registry):
            CachedWorkloadRun(workload, ArtifactCache(tmp_path))
        warm = registry.snapshot()
        for kind in ("module", "train-run", "ref-run"):
            assert _counter(warm, "cache_hits", kind=kind, level="disk") == 1
            assert _counter(warm, "cache_misses", kind=kind) == 0

        for pkl in (tmp_path / "module").glob("*.pkl"):
            pkl.write_bytes(b"not a pickle")
        with capture() as (tracer, registry):
            CachedWorkloadRun(workload, ArtifactCache(tmp_path))
        snap = registry.snapshot()
        assert _counter(snap, "cache_corrupt", kind="module") == 1
        assert _counter(snap, "cache_misses", kind="module") == 1
        assert any(s.name == "cache.corrupt" for s in tracer.spans())


# -- parallel-vs-serial metric equality --------------------------------------
#
# Module level so the worker pickles into pool processes.

FAST_WORKLOADS = ("compress95", "li95")


def _exercise(name: str) -> None:
    run = WorkloadRun(get_workload(name))
    run.aggregate_classification(CA, CR)
    run.table2(CA, CR)


def _obs_worker(name: str):
    set_tracer(Tracer())
    set_metrics(MetricsRegistry())
    _exercise(name)
    return get_tracer().drain_records(), get_metrics().snapshot()


class TestParallelMergeEqualsSerial:
    def test_merged_worker_metrics_equal_serial_totals(self):
        with capture() as (serial_tracer, serial_registry):
            for name in FAST_WORKLOADS:
                _exercise(name)
        serial = serial_registry.snapshot()

        merged_tracer = Tracer()
        merged_registry = MetricsRegistry()
        # Disjoint workloads per worker: every unit of work happens exactly
        # once on each side, so the merged totals must match exactly.
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            for records, snapshot in pool.map(_obs_worker, FAST_WORKLOADS):
                merged_tracer.absorb_records(records)
                merged_registry.merge_snapshot(snapshot)
        parallel = merged_registry.snapshot()

        # Counters and histograms are deterministic functions of the work
        # performed; gauges are excluded (last-writer-wins is order-defined).
        assert parallel["counters"] == serial["counters"]
        assert parallel["histograms"] == serial["histograms"]

        serial_names = collections.Counter(
            s.name for s in serial_tracer.spans()
        )
        parallel_names = collections.Counter(
            s.name for s in merged_tracer.spans()
        )
        assert parallel_names == serial_names
