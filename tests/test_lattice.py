"""Lattice-law property tests for the constant and environment lattices."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    BOT,
    TOP,
    UNREACHABLE,
    ConstEnv,
    is_const,
    leq_env,
    leq_flat,
    meet_env,
    meet_flat,
)

flat_values = st.one_of(
    st.just(TOP), st.just(BOT), st.integers(min_value=-5, max_value=5)
)

env_values = st.one_of(
    st.just(UNREACHABLE),
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]), flat_values, max_size=3
    ).map(ConstEnv),
)


class TestFlatLattice:
    @given(flat_values)
    def test_meet_idempotent(self, a):
        assert meet_flat(a, a) == a

    @given(flat_values, flat_values)
    def test_meet_commutative(self, a, b):
        assert meet_flat(a, b) == meet_flat(b, a)

    @given(flat_values, flat_values, flat_values)
    def test_meet_associative(self, a, b, c):
        assert meet_flat(meet_flat(a, b), c) == meet_flat(a, meet_flat(b, c))

    @given(flat_values)
    def test_top_is_identity(self, a):
        assert meet_flat(TOP, a) == a

    @given(flat_values)
    def test_bot_is_absorbing(self, a):
        assert meet_flat(BOT, a) is BOT

    @given(flat_values, flat_values)
    def test_meet_is_lower_bound(self, a, b):
        m = meet_flat(a, b)
        assert leq_flat(m, a) and leq_flat(m, b)

    @given(flat_values)
    def test_leq_reflexive(self, a):
        assert leq_flat(a, a)

    @given(flat_values, flat_values, flat_values)
    def test_leq_transitive(self, a, b, c):
        if leq_flat(a, b) and leq_flat(b, c):
            assert leq_flat(a, c)

    def test_distinct_constants_meet_to_bot(self):
        assert meet_flat(1, 2) is BOT
        assert meet_flat(3, 3) == 3

    def test_is_const(self):
        assert is_const(5) and not is_const(TOP) and not is_const(BOT)


class TestConstEnv:
    def test_absent_is_top(self):
        assert ConstEnv().get("x") is TOP

    def test_set_and_get(self):
        env = ConstEnv().set("x", 3)
        assert env.get("x") == 3
        assert env.get("y") is TOP

    def test_set_is_persistent(self):
        base = ConstEnv().set("x", 1)
        other = base.set("x", 2)
        assert base.get("x") == 1 and other.get("x") == 2

    def test_set_top_removes(self):
        env = ConstEnv().set("x", 1).set("x", TOP)
        assert env == ConstEnv()

    def test_meet_pointwise(self):
        a = ConstEnv({"x": 1, "y": 2})
        b = ConstEnv({"x": 1, "y": 3})
        m = a.meet(b)
        assert m.get("x") == 1
        assert m.get("y") is BOT

    def test_constants_view(self):
        env = ConstEnv({"x": 1, "y": BOT})
        assert env.constants() == {"x": 1}

    def test_hash_consistent_with_eq(self):
        assert hash(ConstEnv({"x": 1})) == hash(ConstEnv({"x": 1}))

    @given(env_values, env_values)
    @settings(max_examples=100)
    def test_env_meet_commutative(self, a, b):
        assert meet_env(a, b) == meet_env(b, a)

    @given(env_values, env_values, env_values)
    @settings(max_examples=100)
    def test_env_meet_associative(self, a, b, c):
        assert meet_env(meet_env(a, b), c) == meet_env(a, meet_env(b, c))

    @given(env_values)
    def test_unreachable_is_identity(self, a):
        assert meet_env(UNREACHABLE, a) == a

    @given(env_values, env_values)
    @settings(max_examples=100)
    def test_env_meet_is_lower_bound(self, a, b):
        m = meet_env(a, b)
        assert leq_env(m, a) and leq_env(m, b)

    @given(env_values)
    def test_env_leq_reflexive(self, a):
        assert leq_env(a, a)


class TestConstEnvFastPaths:
    """Aliasing fast paths: redundant updates and trivial meets must return
    an existing object, not an equal copy — the WZ solver leans on this to
    keep fixpoint iterations allocation-free."""

    def test_set_same_constant_returns_self(self):
        env = ConstEnv({"x": 1})
        assert env.set("x", 1) is env

    def test_set_same_sentinel_returns_self(self):
        env = ConstEnv({"x": BOT})
        assert env.set("x", BOT) is env

    def test_set_top_on_absent_returns_self(self):
        env = ConstEnv({"x": 1})
        assert env.set("y", TOP) is env

    def test_set_different_value_allocates(self):
        env = ConstEnv({"x": 1})
        assert env.set("x", 2) is not env

    def test_meet_with_self_returns_self(self):
        env = ConstEnv({"x": 1})
        assert env.meet(env) is env

    def test_meet_with_empty_returns_self(self):
        env = ConstEnv({"x": 1, "y": BOT})
        assert env.meet(ConstEnv()) is env

    def test_empty_meet_returns_other(self):
        env = ConstEnv({"x": 1})
        assert ConstEnv().meet(env) is env

    def test_meet_pointwise_equal_returns_self(self):
        a = ConstEnv({"x": 1, "y": BOT})
        b = ConstEnv({"x": 1, "y": BOT})
        m = a.meet(b)
        assert m is a and m is not b

    def test_meet_fast_paths_never_change_the_result(self):
        # The fast paths are pure aliasing: results equal the naive meet.
        a = ConstEnv({"x": 1})
        b = ConstEnv({"x": 1, "y": 2})
        assert a.meet(b) == ConstEnv({"x": 1, "y": 2})
        assert b.meet(a) == ConstEnv({"x": 1, "y": 2})

    @given(env_values, env_values)
    @settings(max_examples=100)
    def test_fast_meet_matches_pointwise_meet(self, a, b):
        m = meet_env(a, b)
        if m is UNREACHABLE:
            assert a is UNREACHABLE and b is UNREACHABLE
            return
        for name in ("a", "b", "c"):
            av = TOP if a is UNREACHABLE else a.get(name)
            bv = TOP if b is UNREACHABLE else b.get(name)
            assert m.get(name) == meet_flat(av, bv)
