"""Unit tests for IR operands and instructions."""

import pytest

from repro.ir import (
    Assign,
    BinOp,
    Branch,
    Call,
    Const,
    Jump,
    Load,
    Print,
    Ret,
    Store,
    UnOp,
    Var,
    copy_instr,
    copy_terminator,
    eval_binop,
    eval_unop,
)
from repro.ir.operands import operand_vars


class TestOperands:
    def test_const_str(self):
        assert str(Const(42)) == "42"
        assert str(Const(-7)) == "-7"

    def test_var_str(self):
        assert str(Var("x")) == "x"

    def test_operands_hashable_and_equal(self):
        assert Const(1) == Const(1)
        assert Var("a") == Var("a")
        assert Const(1) != Var("1")
        assert len({Const(1), Const(1), Var("x")}) == 2

    def test_operand_vars_filters_consts(self):
        assert operand_vars(Const(1), Var("a"), Var("b"), Const(2)) == ("a", "b")


class TestInstructionShape:
    def test_assign_uses_and_dest(self):
        instr = Assign("x", Var("y"))
        assert instr.dest == "x"
        assert instr.uses() == (Var("y"),)
        assert instr.use_vars() == ("y",)
        assert instr.is_pure and instr.produces_value

    def test_binop_uses(self):
        instr = BinOp("z", "add", Var("a"), Const(3))
        assert instr.uses() == (Var("a"), Const(3))
        assert instr.use_vars() == ("a",)

    def test_binop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            BinOp("z", "frobnicate", Const(1), Const(2))

    def test_unop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            UnOp("z", "sqrt", Const(1))

    def test_load_is_impure_but_produces_value(self):
        instr = Load("x", "arr", Var("i"))
        assert not instr.is_pure
        assert instr.produces_value
        assert instr.uses() == (Var("i"),)

    def test_store_has_no_dest(self):
        instr = Store("arr", Const(0), Var("v"))
        assert instr.dest is None
        assert instr.uses() == (Const(0), Var("v"))

    def test_call_with_and_without_dest(self):
        with_dest = Call("r", "f", (Var("a"),))
        without = Call(None, "f", (Var("a"),))
        assert with_dest.dest == "r"
        assert without.dest is None

    def test_print_uses(self):
        instr = Print((Var("a"), Const(1)))
        assert instr.dest is None
        assert instr.use_vars() == ("a",)


class TestTerminators:
    def test_jump_targets(self):
        assert Jump("next").targets() == ("next",)

    def test_branch_targets_and_uses(self):
        term = Branch(Var("c"), "t", "f")
        assert term.targets() == ("t", "f")
        assert term.uses() == (Var("c"),)

    def test_ret_targets_empty(self):
        assert Ret(Var("x")).targets() == ()
        assert Ret().uses() == ()

    def test_retargeted_maps_labels(self):
        term = Branch(Var("c"), "t", "f").retargeted({"t": "t2"})
        assert term.targets() == ("t2", "f")
        jump = Jump("a").retargeted({"a": "b"})
        assert jump.target == "b"

    def test_retargeted_is_a_copy(self):
        original = Jump("a")
        copy = original.retargeted({})
        assert copy is not original and copy.target == "a"


class TestCopying:
    @pytest.mark.parametrize(
        "instr",
        [
            Assign("x", Const(1)),
            BinOp("x", "mul", Var("a"), Var("b")),
            UnOp("x", "neg", Var("a")),
            Load("x", "m", Const(0)),
            Store("m", Const(0), Var("x")),
            Call("r", "f", (Const(1),)),
            Print((Var("x"),)),
        ],
    )
    def test_copy_instr_round_trips(self, instr):
        dup = copy_instr(instr)
        assert dup is not instr
        assert str(dup) == str(instr)
        assert type(dup) is type(instr)

    def test_copy_terminator(self):
        term = Branch(Var("c"), "a", "b")
        dup = copy_terminator(term)
        assert dup is not term and dup.targets() == term.targets()

    def test_copy_instr_rejects_unknown(self):
        with pytest.raises(TypeError):
            copy_instr(object())


class TestOperatorSemantics:
    def test_c_style_division_truncates_toward_zero(self):
        assert eval_binop("div", 7, 2) == 3
        assert eval_binop("div", -7, 2) == -3
        assert eval_binop("div", 7, -2) == -3
        assert eval_binop("div", -7, -2) == 3

    def test_c_style_mod_sign_follows_dividend(self):
        assert eval_binop("mod", 7, 3) == 1
        assert eval_binop("mod", -7, 3) == -1
        assert eval_binop("mod", 7, -3) == 1

    def test_division_by_zero_is_total(self):
        assert eval_binop("div", 5, 0) == 0
        assert eval_binop("mod", 5, 0) == 0

    def test_div_mod_identity(self):
        for a in range(-20, 21):
            for b in list(range(-5, 0)) + list(range(1, 6)):
                assert eval_binop("div", a, b) * b + eval_binop("mod", a, b) == a

    def test_comparisons_produce_zero_or_one(self):
        assert eval_binop("lt", 1, 2) == 1
        assert eval_binop("ge", 1, 2) == 0
        assert eval_binop("eq", 3, 3) == 1
        assert eval_binop("ne", 3, 3) == 0

    def test_shifts(self):
        assert eval_binop("shl", 1, 4) == 16
        assert eval_binop("shr", 16, 4) == 1
        assert eval_binop("shr", -16, 2) == -4  # arithmetic shift

    def test_unops(self):
        assert eval_unop("neg", 5) == -5
        assert eval_unop("not", 0) == -1
        assert eval_unop("lnot", 0) == 1
        assert eval_unop("lnot", 7) == 0

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            eval_binop("pow", 2, 3)
