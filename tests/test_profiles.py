"""Tests for recording edges, Ball–Larus paths, profiles, and trace
splitting."""

import pytest
from hypothesis import given, settings

from repro.interp import BallLarusProfiler
from repro.ir import Cfg, ENTRY, EXIT
from repro.profiles import (
    BLPath,
    PathProfile,
    path_start_vertices,
    profile_from_traces,
    recording_edges,
    split_trace,
)
from repro.profiles.ball_larus import BallLarusNumbering

from conftest import random_cfgs


def loop_cfg() -> Cfg:
    return Cfg(
        edges=[
            (ENTRY, "a"),
            ("a", "b"),
            ("b", "c"),
            ("c", "b"),
            ("b", "d"),
            ("d", EXIT),
        ]
    )


class TestRecordingEdges:
    def test_minimum_set(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        assert (ENTRY, "a") in rec  # edge from entry
        assert ("d", EXIT) in rec  # edge into exit
        assert ("c", "b") in rec  # retreating edge
        assert ("a", "b") not in rec

    def test_extra_recording_edges(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg, extra=[("a", "b")])
        assert ("a", "b") in rec

    def test_extra_must_be_an_edge(self):
        with pytest.raises(ValueError):
            recording_edges(loop_cfg(), extra=[("a", "zzz")])

    def test_removal_acyclifies(self):
        cfg = loop_cfg()
        assert cfg.is_acyclic_without(recording_edges(cfg))

    def test_path_start_vertices(self):
        cfg = loop_cfg()
        starts = path_start_vertices(cfg, recording_edges(cfg))
        assert set(starts) == {"a", "b"}  # targets of recording edges, not exit

    @given(random_cfgs())
    @settings(max_examples=60, deadline=None)
    def test_random_graphs_acyclify(self, cfg):
        assert cfg.is_acyclic_without(recording_edges(cfg))


class TestBLPath:
    def test_requires_two_vertices(self):
        with pytest.raises(ValueError):
            BLPath(("a",))

    def test_edges_and_interior(self):
        p = BLPath(("a", "b", "c"))
        assert p.edges() == (("a", "b"), ("b", "c"))
        assert p.interior() == ("a", "b")
        assert p.start == "a" and p.end == "c"
        assert len(p) == 3

    def test_weight_counts_interior_only(self):
        p = BLPath(("a", "b", "c"))
        sizes = {"a": 2, "b": 3, "c": 100}
        assert p.weight(sizes) == 5

    def test_str(self):
        assert str(BLPath(("a", "b"))) == "[• a b]"


class TestPathProfile:
    def test_counts_accumulate(self):
        prof = PathProfile()
        p = BLPath(("a", "b"))
        prof.add(p)
        prof.add(p, 2)
        assert prof.count(p) == 3
        assert prof.total_count == 3
        assert prof.num_distinct == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PathProfile().add(BLPath(("a", "b")), -1)

    def test_block_frequencies_partition_trace(self):
        # Two paths sharing vertex b: b is interior of one, terminal of the
        # other, so its frequency counts each execution exactly once.
        prof = PathProfile()
        prof.add(BLPath(("a", "b")), 4)  # b terminal: belongs to next path
        prof.add(BLPath(("b", "c", "d")), 4)
        freq = prof.block_frequencies()
        assert freq == {"a": 4, "b": 4, "c": 4}

    def test_edge_frequencies(self):
        prof = PathProfile()
        prof.add(BLPath(("a", "b", "c")), 2)
        assert prof.edge_frequencies() == {("a", "b"): 2, ("b", "c"): 2}

    def test_merged_with(self):
        a = PathProfile({BLPath(("a", "b")): 1})
        b = PathProfile({BLPath(("a", "b")): 2, BLPath(("b", "c")): 1})
        merged = a.merged_with(b)
        assert merged.count(BLPath(("a", "b"))) == 3
        assert a.count(BLPath(("a", "b"))) == 1  # original untouched

    def test_equality(self):
        assert PathProfile({BLPath(("a", "b")): 1}) == PathProfile(
            {BLPath(("a", "b")): 1}
        )
        assert PathProfile() != PathProfile({BLPath(("a", "b")): 1})


class TestSplitTrace:
    def test_straight_trace(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        trace = [ENTRY, "a", "b", "d", EXIT]
        paths = split_trace(trace, rec)
        assert paths == [BLPath(("a", "b", "d", EXIT))]

    def test_looping_trace_cuts_at_backedge(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        trace = [ENTRY, "a", "b", "c", "b", "c", "b", "d", EXIT]
        paths = split_trace(trace, rec)
        assert paths == [
            BLPath(("a", "b", "c", "b")),
            BLPath(("b", "c", "b")),
            BLPath(("b", "d", EXIT)),
        ]

    def test_interior_vertices_partition_the_trace(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        trace = [ENTRY, "a", "b", "c", "b", "d", EXIT]
        paths = split_trace(trace, rec)
        interiors = [v for p in paths for v in p.interior()]
        assert interiors == ["a", "b", "c", "b", "d"]

    def test_bad_trace_start(self):
        with pytest.raises(ValueError):
            split_trace(["a", "b"], frozenset({("b", "c")}))

    def test_incomplete_trace_rejected(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        with pytest.raises(ValueError, match="middle"):
            split_trace([ENTRY, "a", "b"], rec)

    def test_profile_from_traces(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        trace = [ENTRY, "a", "b", "d", EXIT]
        prof = profile_from_traces([trace, trace], rec)
        assert prof.count(BLPath(("a", "b", "d", EXIT))) == 2


class TestBallLarusProfilerEdgeCases:
    def test_leave_with_no_edges_traversed(self):
        # An activation that enters and leaves without traversing any edge
        # (e.g. it trapped before the virtual entry edge) records nothing.
        cfg = loop_cfg()
        prof = BallLarusProfiler(cfg, recording_edges(cfg))
        prof.enter()
        prof.leave()
        assert prof.raw_counts() == {}
        assert prof.profile() == PathProfile()

    def test_activation_trapping_mid_path(self):
        # An activation aborted between recording edges (a trap mid-path)
        # keeps every completed path but discards the one in flight.
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        prof = BallLarusProfiler(cfg, rec)
        prof.enter()
        prof.edge(ENTRY, "a")  # recording: opens the first path
        prof.edge("a", "b")
        prof.edge("b", "c")
        prof.edge("c", "b")  # retreating (recording): flushes a-b-c-b
        prof.edge("b", "c")  # a new path is in flight...
        prof.leave()  # ...when the activation dies
        profile = prof.profile()
        assert profile.total_count == 1
        assert profile.count(BLPath(("a", "b", "c", "b"))) == 1
        # The profiler is reusable for the next activation afterwards.
        prof.enter()
        prof.edge(ENTRY, "a")
        prof.edge("a", "b")
        prof.edge("b", "d")
        prof.edge("d", EXIT)
        prof.leave()
        assert prof.profile().count(BLPath(("a", "b", "d", EXIT))) == 1

    def test_first_edge_must_be_recording(self):
        cfg = loop_cfg()
        prof = BallLarusProfiler(cfg, recording_edges(cfg))
        prof.enter()
        with pytest.raises(ValueError, match="non-recording"):
            prof.edge("a", "b")

    def test_shared_numbering_is_used_and_cached(self):
        cfg = loop_cfg()
        rec = recording_edges(cfg)
        numbering = BallLarusNumbering.for_cfg(cfg, rec)
        # for_cfg memoizes per (cfg, recording)...
        assert BallLarusNumbering.for_cfg(cfg, rec) is numbering
        # ...an explicitly passed numbering is adopted as-is...
        assert BallLarusProfiler(cfg, rec, numbering=numbering).numbering is numbering
        # ...and the default constructor path hits the same cache.
        assert BallLarusProfiler(cfg, rec).numbering is numbering
