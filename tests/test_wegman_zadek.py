"""Wegman–Zadek conditional constant propagation tests, including the
soundness property: any constant the analysis claims must match what the
interpreter actually computes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import BOT, TOP, UNREACHABLE, GraphView, analyze
from repro.dataflow.local import local_constant_sites
from repro.dataflow.transfer import eval_pure
from repro.interp import Interpreter
from repro.ir import (
    Assign,
    BinOp,
    Const,
    IRBuilder,
    Module,
    UnOp,
    Var,
)


def analyze_fn(fn):
    return analyze(GraphView.from_function(fn))


class TestStraightLine:
    def test_constants_propagate_across_blocks(self):
        b = IRBuilder("f")
        b.block("entry")
        b.assign("x", 2)
        b.jump("next")
        b.block("next")
        b.binop("y", "mul", "x", 3)
        b.ret("y")
        result = analyze_fn(b.finish())
        assert result.constant_sites("next") == {0: 6}

    def test_params_are_bottom(self):
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.binop("y", "add", "p", 1)
        b.ret("y")
        result = analyze_fn(b.finish())
        assert result.site_values("entry")[0] is BOT

    def test_loads_and_calls_are_bottom(self):
        b = IRBuilder("f")
        b.block("entry")
        b.load("x", "mem", 0)
        b.call("y", "abs", 1)
        b.binop("z", "add", "x", "y")
        b.ret("z")
        values = analyze_fn(b.finish()).site_values("entry")
        assert values[0] is BOT and values[1] is BOT and values[2] is BOT


class TestMerges:
    def _diamond(self, left, right):
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.assign("x", left)
        b.jump("join")
        b.block("r")
        b.assign("x", right)
        b.jump("join")
        b.block("join")
        b.binop("y", "add", "x", 1)
        b.ret("y")
        return b.finish()

    def test_equal_values_survive_merge(self):
        result = analyze_fn(self._diamond(5, 5))
        assert result.constant_sites("join") == {0: 6}

    def test_different_values_merge_to_bottom(self):
        result = analyze_fn(self._diamond(5, 7))
        assert result.site_values("join")[0] is BOT


class TestConditionalPruning:
    def test_constant_branch_prunes_dead_leg(self):
        b = IRBuilder("f")
        b.block("entry")
        b.assign("c", 1)
        b.branch("c", "live", "dead")
        b.block("live")
        b.assign("x", 10)
        b.jump("join")
        b.block("dead")
        b.assign("x", 99)
        b.jump("join")
        b.block("join")
        b.binop("y", "add", "x", 0)
        b.ret("y")
        result = analyze_fn(b.finish())
        assert not result.is_executable("dead")
        # x = 10 survives because the dead leg contributes nothing.
        assert result.constant_sites("join")[0] == 10

    def test_wz_beats_nonconditional_on_guarded_constants(self):
        """The classic conditional-constant example: a flag tested and the
        guarded region consistent with the flag's value."""
        b = IRBuilder("f")
        b.block("entry")
        b.assign("flag", 0)
        b.jump("test")
        b.block("test")
        b.branch("flag", "on", "off")
        b.block("on")
        b.assign("x", 1)
        b.jump("test2")
        b.block("off")
        b.assign("x", 2)
        b.jump("test2")
        b.block("test2")
        b.ret("x")
        result = analyze_fn(b.finish())
        assert not result.is_executable("on")
        env = result.input_env("test2")
        assert env.get("x") == 2

    def test_executable_edges_reported(self):
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.branch("p", "a", "c")
        b.block("a")
        b.ret()
        b.block("c")
        b.ret()
        result = analyze_fn(b.finish())
        assert ("entry", "a") in result.executable_edges
        assert ("entry", "c") in result.executable_edges

    def test_unreachable_vertex_has_no_sites(self):
        b = IRBuilder("f")
        b.block("entry")
        b.assign("c", 0)
        b.branch("c", "dead", "live")
        b.block("dead")
        b.assign("x", 1)
        b.ret("x")
        b.block("live")
        b.ret()
        result = analyze_fn(b.finish())
        assert result.input_env("dead") is UNREACHABLE
        assert result.site_values("dead") == {}
        assert result.output_env("dead") is UNREACHABLE


class TestLoops:
    def test_loop_carried_variable_goes_bottom(self):
        b = IRBuilder("f", ["n"])
        b.block("entry")
        b.assign("i", 0)
        b.jump("head")
        b.block("head")
        b.binop("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.binop("i", "add", "i", 1)
        b.jump("head")
        b.block("done")
        b.ret("i")
        result = analyze_fn(b.finish())
        assert result.input_env("head").get("i") is BOT

    def test_loop_invariant_constant_survives(self):
        b = IRBuilder("f", ["n"])
        b.block("entry")
        b.assign("k", 7)
        b.assign("i", 0)
        b.jump("head")
        b.block("head")
        b.binop("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.binop("x", "mul", "k", 2)  # non-local iterative constant
        b.binop("i", "add", "i", 1)
        b.jump("head")
        b.block("done")
        b.ret()
        result = analyze_fn(b.finish())
        assert result.constant_sites("body")[0] == 14


class TestPureConstantSites:
    def test_loads_excluded(self):
        b = IRBuilder("f")
        b.block("entry")
        b.load("x", "m", 0)
        b.assign("y", 3)
        b.ret("y")
        result = analyze_fn(b.finish())
        assert result.pure_constant_sites("entry") == {1: 3}


class TestLocalAnalysis:
    def test_local_chain(self):
        b = IRBuilder("f")
        b.block("entry")
        b.assign("a", 2)
        b.binop("b", "mul", "a", 3)
        b.binop("c", "add", "b", "a")
        b.ret("c")
        sites = local_constant_sites(b.finish().blocks["entry"])
        assert sites == {0: 2, 1: 6, 2: 8}

    def test_incoming_values_unknown(self):
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.assign("a", "p")
        b.binop("b", "add", "a", 1)
        b.ret("b")
        assert local_constant_sites(b.finish().blocks["entry"]) == {}

    def test_kill_on_opaque_redefinition(self):
        b = IRBuilder("f")
        b.block("entry")
        b.assign("a", 2)
        b.load("a", "m", 0)
        b.binop("b", "add", "a", 1)
        b.ret("b")
        assert local_constant_sites(b.finish().blocks["entry"]) == {0: 2}


class TestSoundness:
    """Whatever the analysis calls constant must equal the dynamic value."""

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_constants_match_execution(self, data):
        # A random diamond/loop-free program over small constants.
        b = IRBuilder("main", ["p"])
        b.block("entry")
        n_vars = data.draw(st.integers(1, 4))
        for i in range(n_vars):
            b.assign(f"v{i}", data.draw(st.integers(-3, 3)))
        b.branch("p", "left", "right")
        for side in ("left", "right"):
            b.block(side)
            for i in range(n_vars):
                if data.draw(st.booleans()):
                    b.assign(f"v{i}", data.draw(st.integers(-3, 3)))
            b.jump("join")
        b.block("join")
        op = data.draw(st.sampled_from(["add", "mul", "sub", "xor"]))
        b.binop("out", op, "v0", f"v{n_vars - 1}")
        b.ret("out")
        fn = b.finish()
        result = analyze_fn(fn)

        module = Module()
        module.add_function(fn)
        interp = Interpreter(module, profile_mode=None, track_sites=True)
        for arg in (0, 1):
            run = interp.run([arg])
            for (name, label, idx), stats in run.site_stats.items():
                consts = result.constant_sites(label)
                if idx in consts:
                    assert stats.observed == [consts[idx]], (
                        label,
                        idx,
                        consts[idx],
                        stats.observed,
                    )
