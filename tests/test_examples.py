"""The example scripts must run end to end (they are the documented
entry points; a broken example is a broken README)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", [], capsys)
        assert "Path profile (Figure 2)" in out
        assert "x = add a, b  ->  6" in out
        assert "behaviour identical : True" in out

    def test_qualified_reaching_defs(self, capsys):
        out = run_example("qualified_reaching_defs", [], capsys)
        assert "<- unique!" in out

    def test_spec_workload_pipeline(self, capsys):
        out = run_example("spec_workload_pipeline", ["compress95"], capsys)
        assert "improvement over WZ" in out
        assert "speedup" in out

    def test_classify_constants(self, capsys):
        out = run_example("classify_constants", ["compress95"], capsys)
        assert "Figure 13 regions" in out
        assert "Variable" in out

    def test_coverage_tradeoff(self, capsys):
        out = run_example("coverage_tradeoff", ["compress95"], capsys)
        assert "coverage sweep" in out
        assert "reduction cutoff sweep" in out

    @pytest.mark.parametrize(
        "name", ["spec_workload_pipeline", "classify_constants", "coverage_tradeoff"]
    )
    def test_unknown_workload_rejected(self, name, capsys):
        with pytest.raises(SystemExit):
            run_example(name, ["gcc95"], capsys)
