"""Experiment-harness tests: the metrics behind every table and figure, on
two cached workloads (compress95 and vortex95)."""

import pytest

from repro.evaluation import CA_SWEEP, format_table
from repro.stats import constant_distribution, cumulative_coverage


class TestTable1Metrics:
    def test_cfg_nodes_counts_blocks(self, compress_run):
        assert compress_run.cfg_nodes == sum(
            len(fn.blocks) for fn in compress_run.module.functions.values()
        )

    def test_executed_paths_positive(self, compress_run):
        assert compress_run.executed_paths > 0

    def test_hot_paths_monotone_in_coverage(self, compress_run):
        counts = [compress_run.hot_path_count(ca) for ca in CA_SWEEP]
        assert counts == sorted(counts)
        assert counts[0] == 0  # CA = 0 selects nothing

    def test_compile_time_recorded(self, compress_run):
        assert compress_run.compile_time > 0

    def test_analysis_time_positive(self, compress_run):
        assert compress_run.analysis_time(0.0) > 0


class TestFigure9Metrics:
    def test_constant_increase_grows_with_coverage(self, vortex_run):
        zero = vortex_run.aggregate_classification(0.0).constant_increase
        high = vortex_run.aggregate_classification(0.97).constant_increase
        assert zero == 0.0
        assert high > 0.0

    def test_most_benefit_before_full_coverage(self, vortex_run):
        """The paper: 'all benchmarks saw virtually all of their benefit by
        CA = 0.97'."""
        at_97 = vortex_run.aggregate_classification(0.97).constant_increase
        at_full = vortex_run.aggregate_classification(1.0).constant_increase
        assert at_97 >= 0.8 * at_full

    def test_improvement_ratio_beats_wz(self, vortex_run):
        agg = vortex_run.aggregate_classification(0.97)
        assert agg.improvement_ratio > 1.0


class TestFigure11Metrics:
    def test_size_ordering(self, vortex_run):
        orig, hpg, red = vortex_run.graph_sizes(0.97)
        assert orig <= red <= hpg

    def test_sizes_at_zero_coverage_equal_original(self, vortex_run):
        orig, hpg, red = vortex_run.graph_sizes(0.0)
        assert orig == hpg == red

    def test_hpg_growth_monotone_in_coverage(self, vortex_run):
        sizes = [vortex_run.graph_sizes(ca)[1] for ca in CA_SWEEP]
        assert sizes == sorted(sizes)


class TestFigure7Metrics:
    def test_distribution_concentrated(self, compress_run):
        qa = compress_run.qualified(1.0)["compress"]
        dist = constant_distribution(qa.reduction.weights)
        cov = cumulative_coverage(dist)
        assert cov[-1] == pytest.approx(1.0)
        # compress: a handful of vertices carries almost everything.
        assert cov[min(3, len(cov) - 1)] > 0.9


class TestTable2:
    def test_speedup_and_behaviour(self, vortex_run):
        row = vortex_run.table2(0.97)
        assert row.base_cost > 0 and row.optimized_cost > 0
        assert 0.8 < row.speedup < 2.0  # sane magnitude

    def test_base_build_behaviour_checked(self, compress_run):
        row = compress_run.table2(0.97)
        assert row.speedup == row.base_cost / row.optimized_cost


class TestCaching:
    def test_qualified_results_are_cached(self, compress_run):
        a = compress_run.qualified(0.97)
        b = compress_run.qualified(0.97)
        assert a is b

    def test_profiles_empty_for_uncalled_functions(self, compress_run):
        from repro.profiles import PathProfile

        assert compress_run.train_profile("nonexistent") == PathProfile()


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "n"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text


class TestFigureRendering:
    def test_sparkline_shapes(self):
        from repro.evaluation import sparkline

        flat = sparkline([1.0, 1.0, 1.0])
        assert len(flat) == 3 and len(set(flat)) == 1
        rising = sparkline([0.0, 0.5, 1.0])
        assert rising[0] < rising[-1]
        assert sparkline([]) == ""

    def test_render_series(self):
        from repro.evaluation import render_series

        text = render_series(
            {"a": [0.0, 0.1], "bb": [0.2, 0.2]}, ["0", "1"], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a " in lines[2] and "bb" in lines[3]
        assert "+0.0% -> +10.0%" in lines[2]
