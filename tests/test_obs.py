"""Unit tests for the observability subsystem (``repro.obs``).

Covers the tracer's nesting/timing/thread-safety contracts, the metric
instruments (histogram bucketing in particular), snapshot merge/diff, and
the three exporters (JSONL, Prometheus text, human span tree).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    capture,
    diff_snapshots,
    get_metrics,
    get_tracer,
    metrics_to_prometheus,
    observability_enabled,
    render_metrics,
    render_span_tree,
    render_trace_report,
    trace_to_jsonl,
    traced,
    write_trace_jsonl,
)
from repro.obs.tracer import NULL_SPAN


class TestTracer:
    def test_span_records_name_timing_attrs(self):
        tr = Tracer()
        with tr.span("stage", workload="w") as span:
            time.sleep(0.001)
        assert span.finished
        assert span.duration >= 0.001
        assert span.attrs == {"workload": "w"}
        assert tr.spans() == (span,)

    def test_nesting_sets_parent_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                with tr.span("leaf") as leaf:
                    pass
            with tr.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert sibling.parent_id == outer.span_id
        # Finish order: innermost first.
        assert [s.name for s in tr.spans()] == [
            "leaf",
            "inner",
            "sibling",
            "outer",
        ]

    def test_set_merges_attributes(self):
        tr = Tracer()
        with tr.span("s", a=1) as span:
            span.set(b=2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_exception_annotates_and_propagates(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom") as span:
                raise ValueError("x")
        assert span.attrs["error"] == "ValueError"
        assert span.finished

    def test_event_is_zero_duration(self):
        tr = Tracer()
        tr.event("cache.corrupt", kind="module")
        (span,) = tr.spans()
        assert span.duration == 0.0
        assert span.attrs == {"kind": "module"}

    def test_disabled_tracer_is_a_noop(self):
        tr = Tracer(enabled=False)
        span = tr.span("ignored", x=1)
        assert span is NULL_SPAN
        with span:
            span.set(y=2)
        tr.event("also-ignored")
        assert tr.spans() == ()

    def test_wrap_decorator(self):
        tr = Tracer()

        @tr.wrap("fn.call")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (span,) = tr.spans()
        assert span.name == "fn.call"

    def test_traced_decorator_uses_tracer_at_call_time(self):
        @traced("late.bound")
        def fn():
            return 42

        fn()  # global tracer disabled: nothing recorded
        with capture() as (tracer, _):
            fn()
        assert [s.name for s in tracer.spans()] == ["late.bound"]

    def test_drain_and_absorb_reparents_roots(self):
        worker = Tracer()
        with worker.span("root"):
            with worker.span("child"):
                pass
        records = worker.drain_records()
        assert worker.spans() == ()

        parent = Tracer()
        with parent.span("sweep") as sweep:
            pass
        parent.absorb_records(records, parent_id=sweep.span_id)
        by_name = {s.name: s for s in parent.spans()}
        assert by_name["root"].parent_id == sweep.span_id
        # Non-roots keep their original parent.
        assert by_name["child"].parent_id == by_name["root"].span_id

    def test_span_record_round_trip(self):
        tr = Tracer()
        with tr.span("s", k="v") as span:
            pass
        clone = Span.from_record(span.to_record())
        assert clone.name == "s"
        assert clone.span_id == span.span_id
        assert clone.attrs == {"k": "v"}
        assert clone.duration == pytest.approx(span.duration)

    def test_thread_safety(self):
        tr = Tracer()
        registry = MetricsRegistry()
        threads = 8
        per_thread = 50
        barrier = threading.Barrier(threads)

        def work(i):
            barrier.wait()
            for _ in range(per_thread):
                with tr.span(f"thread-{i}"):
                    registry.counter("work_items").inc()

        workers = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()

        spans = tr.spans()
        assert len(spans) == threads * per_thread
        # Each thread's stack is independent: no span may be parented under
        # another thread's span.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].name == span.name
        snap = registry.snapshot()
        assert snap["counters"][("work_items", ())] == threads * per_thread


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="module").inc()
        reg.counter("hits", kind="module").inc(2)
        reg.counter("hits", kind="ref-run").inc()
        reg.gauge("budget").set(64)
        snap = reg.snapshot()
        assert snap["counters"][("hits", (("kind", "module"),))] == 3
        assert snap["counters"][("hits", (("kind", "ref-run"),))] == 1
        assert snap["gauges"][("budget", ())] == 64

    def test_histogram_bucketing_le_semantics(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 7.0):
            hist.observe(value)
        snap = reg.snapshot()["histograms"][("h", ())]
        # counts[i] is observations with value <= buckets[i]; last is +Inf.
        assert snap["counts"] == [2, 2, 2, 1]
        assert snap["count"] == 7
        assert snap["sum"] == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 7.0)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(5, 1))

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_snapshot_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h", buckets=(1, 10)).observe(5)
        a.gauge("g").set(1)

        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        b.histogram("h", buckets=(1, 10)).observe(0.5)
        b.gauge("g").set(7)

        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"][("c", ())] == 5
        assert snap["counters"][("only_b", ())] == 1
        assert snap["gauges"][("g", ())] == 7  # last writer wins
        hist = snap["histograms"][("h", ())]
        assert hist["counts"] == [1, 1, 0]
        assert hist["count"] == 2

    def test_diff_snapshots_is_the_per_job_delta(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        base = reg.snapshot()
        reg.counter("c").inc(5)
        reg.histogram("h", buckets=(1,)).observe(3)
        delta = diff_snapshots(reg.snapshot(), base)
        assert delta["counters"] == {("c", ()): 5}
        assert delta["histograms"][("h", ())]["counts"] == [0, 1]
        # Merging base + delta reproduces the final state.
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(base)
        rebuilt.merge_snapshot(delta)
        assert rebuilt.snapshot()["counters"] == reg.snapshot()["counters"]


class TestGlobals:
    def test_globals_start_disabled(self):
        assert not get_tracer().enabled
        assert not get_metrics().enabled
        assert not observability_enabled()

    def test_capture_installs_and_restores(self):
        prev_tracer, prev_metrics = get_tracer(), get_metrics()
        with capture() as (tracer, registry):
            assert get_tracer() is tracer
            assert get_metrics() is registry
            assert observability_enabled()
        assert get_tracer() is prev_tracer
        assert get_metrics() is prev_metrics

    def test_capture_restores_on_error(self):
        prev = get_tracer()
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("x")
        assert get_tracer() is prev


class TestExporters:
    def _sample(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with tracer.span("outer", workload="w"):
            with tracer.span("inner"):
                registry.counter("hits", kind="module").inc(3)
                registry.gauge("budget").set(8)
                registry.histogram("lat", buckets=(1, 10)).observe(2)
        return tracer, registry

    def test_jsonl_one_valid_object_per_line(self):
        tracer, registry = self._sample()
        text = trace_to_jsonl(tracer, registry)
        lines = text.splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [r["type"] for r in records]
        assert kinds.count("span") == 2
        assert "counter" in kinds and "gauge" in kinds and "histogram" in kinds
        span = next(r for r in records if r["type"] == "span" and r["name"] == "inner")
        assert span["parent_id"] is not None

    def test_write_trace_jsonl(self, tmp_path):
        tracer, registry = self._sample()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer, registry)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_prometheus_format(self):
        _, registry = self._sample()
        text = metrics_to_prometheus(registry.snapshot())
        assert '# TYPE repro_hits_total counter' in text
        assert 'repro_hits_total{kind="module"} 3' in text
        assert 'repro_budget 8' in text
        assert 'repro_lat_bucket{le="1"} 0' in text
        assert 'repro_lat_bucket{le="10"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert 'repro_lat_sum 2' in text
        assert 'repro_lat_count 1' in text

    def test_span_tree_render(self):
        tracer, _ = self._sample()
        text = render_span_tree(tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("- outer")
        assert lines[1].startswith("  - inner")
        assert "slowest spans:" in text

    def test_span_tree_aggregates_repeated_siblings(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(6):
                with tracer.span("solve"):
                    pass
        text = render_span_tree(tracer.spans())
        assert "- solve x6" in text
        assert text.count("- solve") == 1

    def test_span_tree_handles_orphans(self):
        records = [
            {"name": "orphan", "span_id": "x-1", "parent_id": "gone",
             "start": 0.0, "duration": 0.5, "attrs": {}},
        ]
        spans = [Span.from_record(r) for r in records]
        text = render_span_tree(spans)
        assert text.splitlines()[0].startswith("- orphan")

    def test_render_trace_report_sections(self):
        tracer, registry = self._sample()
        report = render_trace_report(tracer, registry)
        assert "== trace ==" in report
        assert "== metrics ==" in report
        assert "hits" in report

    def test_render_metrics_empty(self):
        assert render_metrics(MetricsRegistry().snapshot()) == "(no metrics recorded)"


class TestMemorySampling:
    """Opt-in per-span peak-memory annotation (``repro.obs.memsample``)."""

    def test_off_by_default(self):
        from repro.obs import memory_sampling_enabled

        assert not memory_sampling_enabled()
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        assert "mem_peak_kb" not in tracer.spans()[0].attrs

    def test_spans_annotated_and_parent_dominates_child(self):
        from repro.obs import memory_sampling

        tracer = Tracer()
        with memory_sampling():
            with tracer.span("outer") as outer:
                junk = [0] * 50_000  # parent-side allocation
                with tracer.span("inner") as inner:
                    more = [1] * 10_000
                del more
            del junk
        assert outer.attrs["mem_peak_kb"] > 0
        assert inner.attrs["mem_peak_kb"] > 0
        # tracemalloc's peak is process-wide; the bookkeeping must fold a
        # child's reading into its parent, never the other way round.
        assert outer.attrs["mem_peak_kb"] >= inner.attrs["mem_peak_kb"]

    def test_scope_restores_off_state(self):
        import tracemalloc

        from repro.obs import memory_sampling, memory_sampling_enabled

        assert not tracemalloc.is_tracing()
        with memory_sampling():
            assert memory_sampling_enabled()
            assert tracemalloc.is_tracing()
        assert not memory_sampling_enabled()
        assert not tracemalloc.is_tracing()

    def test_span_opened_before_enable_is_unannotated(self):
        from repro.obs import disable_memory_sampling, enable_memory_sampling

        tracer = Tracer()
        span = tracer.span("early")
        span.__enter__()
        enable_memory_sampling()
        try:
            with tracer.span("late") as late:
                pass
        finally:
            disable_memory_sampling()
        span.__exit__(None, None, None)
        assert "mem_peak_kb" not in span.attrs
        assert "mem_peak_kb" in late.attrs


class TestStreamWriter:
    """Line-buffered JSONL streaming (``--trace-out`` while running)."""

    def test_span_lines_land_before_finish(self, tmp_path):
        from repro.obs import stream_trace_jsonl

        tracer = Tracer()
        registry = MetricsRegistry()
        path = tmp_path / "live.jsonl"
        with stream_trace_jsonl(path, tracer, registry):
            with tracer.span("first"):
                pass
            registry.counter("hits").inc()
            # The span record must be on disk NOW — mid-run, pre-finish —
            # or `tail -f` shows nothing until the command exits.
            live = [json.loads(l) for l in path.read_text().splitlines()]
            assert [r["name"] for r in live if r["type"] == "span"] == ["first"]
            assert not any(r["type"] == "counter" for r in live)
            with tracer.span("second"):
                pass
        final = [json.loads(l) for l in path.read_text().splitlines()]
        names = [r["name"] for r in final if r["type"] == "span"]
        assert names == ["first", "second"]
        assert any(r["type"] == "counter" for r in final)

    def test_listener_removed_after_scope(self, tmp_path):
        from repro.obs import stream_trace_jsonl

        tracer = Tracer()
        path = tmp_path / "scoped.jsonl"
        with stream_trace_jsonl(path, tracer, MetricsRegistry()):
            with tracer.span("inside"):
                pass
        with tracer.span("after"):
            pass
        names = [
            json.loads(l)["name"]
            for l in path.read_text().splitlines()
            if json.loads(l)["type"] == "span"
        ]
        assert names == ["inside"]

    def test_writer_close_is_idempotent(self, tmp_path):
        from repro.obs import JsonlStreamWriter

        writer = JsonlStreamWriter(tmp_path / "w.jsonl")
        writer.finish(MetricsRegistry())
        writer.close()  # second close must not raise
        with Tracer().span("late") as span:
            pass
        writer.on_span(span)  # post-close writes are dropped, not errors

    def test_streamed_spans_carry_mem_peak(self, tmp_path):
        from repro.obs import memory_sampling, stream_trace_jsonl

        tracer = Tracer()
        path = tmp_path / "mem.jsonl"
        with memory_sampling(), stream_trace_jsonl(path, tracer, MetricsRegistry()):
            with tracer.span("work"):
                junk = [0] * 10_000
                del junk
        record = next(
            json.loads(l)
            for l in path.read_text().splitlines()
            if json.loads(l)["type"] == "span"
        )
        assert record["attrs"]["mem_peak_kb"] > 0
