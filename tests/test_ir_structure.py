"""Unit tests for basic blocks, functions, modules, and the builder."""

import pytest

from repro.ir import (
    ArrayDecl,
    Assign,
    BasicBlock,
    Const,
    Function,
    IRBuilder,
    Jump,
    Module,
    Ret,
    Var,
)


def simple_function() -> Function:
    b = IRBuilder("f", ["n"])
    b.block("entry")
    b.assign("x", 1)
    b.binop("y", "add", "x", "n")
    b.jump("exit_block")
    b.block("exit_block")
    b.ret("y")
    return b.finish()


class TestBasicBlock:
    def test_successors_from_terminator(self):
        blk = BasicBlock("a", [], Jump("b"))
        assert blk.successors() == ("b",)
        assert BasicBlock("a").successors() == ()

    def test_size_counts_terminator(self):
        blk = BasicBlock("a", [Assign("x", Const(1))], Ret())
        assert blk.size == 2

    def test_value_sites(self):
        blk = BasicBlock("a", [Assign("x", Const(1)), Assign("y", Var("x"))])
        assert [i for i, _ in blk.value_sites()] == [0, 1]

    def test_copy_is_deep(self):
        blk = BasicBlock("a", [Assign("x", Const(1))], Jump("b"))
        dup = blk.copy("a2")
        assert dup.label == "a2"
        dup.instrs.append(Assign("y", Const(2)))
        assert len(blk.instrs) == 1

    def test_str_renders_label_and_body(self):
        text = str(BasicBlock("a", [Assign("x", Const(1))], Ret()))
        assert text.splitlines() == ["a:", "  x = 1", "  ret"]


class TestFunction:
    def test_entry_defaults_to_first_block(self):
        fn = simple_function()
        assert fn.entry == "entry"

    def test_duplicate_label_rejected(self):
        fn = Function("f")
        fn.add_block(BasicBlock("a"))
        with pytest.raises(ValueError):
            fn.add_block(BasicBlock("a"))

    def test_variables_params_first(self):
        fn = simple_function()
        assert fn.variables()[0] == "n"
        assert set(fn.variables()) == {"n", "x", "y"}

    def test_size(self):
        # entry: 2 instructions + jump; exit_block: ret.
        assert simple_function().size == 4

    def test_copy_is_independent(self):
        fn = simple_function()
        dup = fn.copy()
        dup.blocks["entry"].instrs.clear()
        assert len(fn.blocks["entry"].instrs) == 2

    def test_return_blocks(self):
        assert simple_function().return_blocks() == ("exit_block",)

    def test_instructions_iterates_in_order(self):
        fn = simple_function()
        sites = list(fn.instructions())
        assert [(s[0], s[1]) for s in sites] == [("entry", 0), ("entry", 1)]

    def test_entry_of_empty_function_raises(self):
        with pytest.raises(ValueError):
            Function("f").entry


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module()
        m.add_function(simple_function())
        with pytest.raises(ValueError):
            m.add_function(simple_function())

    def test_duplicate_array_rejected(self):
        m = Module()
        m.add_array(ArrayDecl("a", 4))
        with pytest.raises(ValueError):
            m.add_array(ArrayDecl("a", 8))

    def test_array_initial_contents_pads_with_zeros(self):
        decl = ArrayDecl("a", 5, (1, 2))
        assert decl.initial_contents() == [1, 2, 0, 0, 0]

    def test_copy_is_deep(self):
        m = Module()
        m.add_array(ArrayDecl("a", 2, (9,)))
        m.add_function(simple_function())
        dup = m.copy()
        dup.functions["f"].blocks["entry"].instrs.clear()
        assert len(m.functions["f"].blocks["entry"].instrs) == 2


class TestBuilder:
    def test_unterminated_block_rejected_at_finish(self):
        b = IRBuilder("f")
        b.block("entry")
        with pytest.raises(RuntimeError):
            b.finish()

    def test_double_termination_rejected(self):
        b = IRBuilder("f")
        b.block("entry")
        b.ret()
        with pytest.raises(RuntimeError):
            b.current  # no current block after a terminator

    def test_new_label_reserves_names(self):
        b = IRBuilder("f")
        first = b.new_label("x")
        second = b.new_label("x")
        assert first != second

    def test_new_temp_unique(self):
        b = IRBuilder("f")
        assert b.new_temp() != b.new_temp()

    def test_operand_coercion(self):
        b = IRBuilder("f")
        b.block("entry")
        b.assign("x", 5)
        b.assign("y", "x")
        b.ret()
        fn = b.finish()
        instrs = fn.blocks["entry"].instrs
        assert instrs[0].src == Const(5)
        assert instrs[1].src == Var("x")

    def test_switch_to_reopens_block(self):
        b = IRBuilder("f")
        b.block("a")
        b.block("b")
        b.ret()
        b.switch_to("a")
        b.jump("b")
        fn = b.finish()
        assert fn.blocks["a"].terminator.target == "b"
