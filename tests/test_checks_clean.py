"""The checker layer against *clean* pipelines: every invariant family must
come back silent (no error-severity findings) on code the repo itself
produces.  This is the executable form of the paper's theorems — Theorem 1
(conservation), Theorem 2 (trivial failure function), Lemmas 1-2 (profile
carry-over) hold on every real run, not just on the worked example.
"""

from __future__ import annotations

import pytest

from repro.checks import Severity
from repro.checks.runner import (
    NULL_CHECKER,
    PipelineChecker,
    check_module,
    check_qualified,
    check_run_result,
    check_workload_run,
)
from repro.evaluation.harness import WorkloadRun
from repro.obs import capture
from repro.workloads import get_workload

CA, CR = 0.97, 0.95

#: One span per check pass, nested under the stage that triggered it.
CHECK_SPANS = {
    "check.ir",
    "check.lint",
    "check.profile",
    "check.automaton",
    "check.hpg",
    "check.dataflow",
}


def assert_no_errors(diags):
    assert not diags.has_errors, "\n" + diags.render_text()


class TestRunningExampleClean:
    def test_module_checks(self, example_module):
        assert_no_errors(check_module(example_module))

    def test_run_checks(self, example_module, example_run):
        diags = check_run_result(example_module, example_run)
        assert_no_errors(diags)

    def test_qualified_checks(self, example_qualified):
        diags = check_qualified({"work": example_qualified})
        assert_no_errors(diags)
        # The traced pipeline actually engaged: the HPG exists and the
        # checks above really exercised the projection / carry-over paths.
        assert example_qualified.hpg is not None


class TestWorkloadClean:
    def test_compress_full_run_clean(self, compress_run):
        diags = check_workload_run(compress_run, CA, CR)
        assert_no_errors(diags)
        # Frontend zero-initializations produce a couple of known
        # dead-store warnings; anything else would be a surprise.
        assert {d.code for d in diags.warnings} <= {"LINT002"}

    def test_vortex_full_run_clean(self, vortex_run):
        assert_no_errors(check_workload_run(vortex_run, CA, CR))

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name", ["go95", "ijpeg95", "li95", "m88ksim95", "perl95"]
    )
    def test_remaining_workloads_clean(self, name):
        run = WorkloadRun(get_workload(name))
        assert_no_errors(check_workload_run(run, CA, CR))


class TestPipelineCheckerWiring:
    def test_null_checker_is_inert(self):
        assert not NULL_CHECKER.enabled
        NULL_CHECKER.after_compile("w", None)
        NULL_CHECKER.after_run("w", "train", None, None)
        NULL_CHECKER.after_qualified("w", None)
        assert not hasattr(NULL_CHECKER, "diagnostics") or not list(
            getattr(NULL_CHECKER, "diagnostics", [])
        )

    def test_checker_hooks_fire_with_spans_and_counters(self):
        checker = PipelineChecker()
        with capture() as (tracer, registry):
            run = WorkloadRun(get_workload("compress95"), checker=checker)
            run.qualified(CA, CR)
            snapshot = registry.snapshot()
        assert_no_errors(checker.diagnostics)

        names = {s.name for s in tracer.spans()}
        assert CHECK_SPANS <= names

        ran = {
            labels: count
            for (metric, labels), count in snapshot["counters"].items()
            if metric == "check_pass_runs"
        }
        assert ran and all(count > 0 for count in ran.values())

    def test_default_run_has_null_checker(self, compress_run):
        assert compress_run.checker is NULL_CHECKER
