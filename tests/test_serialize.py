"""Profile serialization round-trip and error tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiles import (
    BLPath,
    PathProfile,
    ProfileFormatError,
    dumps_profiles,
    loads_profiles,
)


def sample_profiles():
    work = PathProfile()
    work.add(BLPath(("A", "B", "C")), 70)
    work.add(BLPath(("B", "D", "__exit__")), 30)
    main = PathProfile()
    main.add(BLPath(("entry", "loop")), 1)
    return {"work": work, "main": main}


class TestRoundTrip:
    def test_basic_round_trip(self):
        profiles = sample_profiles()
        assert loads_profiles(dumps_profiles(profiles)) == profiles

    def test_round_trip_from_real_run(self, example_run):
        profiles = dict(example_run.profiles)
        assert loads_profiles(dumps_profiles(profiles)) == profiles

    def test_output_is_sorted_and_stable(self):
        a = dumps_profiles(sample_profiles())
        b = dumps_profiles(sample_profiles())
        assert a == b

    def test_empty_profile_serializes(self):
        text = dumps_profiles({"f": PathProfile()})
        assert loads_profiles(text) == {"f": PathProfile()}

    @given(
        st.dictionaries(
            st.sampled_from(["f", "g"]),
            st.dictionaries(
                st.tuples(
                    st.sampled_from(["a", "b", "c"]),
                    st.sampled_from(["d", "e", "__exit__"]),
                ).map(BLPath),
                st.integers(1, 1000),
                max_size=4,
            ).map(PathProfile),
            max_size=2,
        )
    )
    @settings(max_examples=50)
    def test_random_round_trip(self, profiles):
        assert loads_profiles(dumps_profiles(profiles)) == profiles


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ProfileFormatError, match="header"):
            loads_profiles("routine f\n")

    def test_path_before_routine(self):
        with pytest.raises(ProfileFormatError, match="before any routine"):
            loads_profiles("# repro path profile v1\npath 1 a b\n")

    def test_bad_count(self):
        with pytest.raises(ProfileFormatError, match="bad count"):
            loads_profiles("# repro path profile v1\nroutine f\npath x a b\n")

    def test_too_few_vertices(self):
        with pytest.raises(ProfileFormatError, match=">= 2"):
            loads_profiles("# repro path profile v1\nroutine f\npath 1 a\n")

    def test_unknown_directive(self):
        with pytest.raises(ProfileFormatError, match="unknown directive"):
            loads_profiles("# repro path profile v1\nwibble\n")

    def test_duplicate_routine(self):
        with pytest.raises(ProfileFormatError, match="duplicate"):
            loads_profiles(
                "# repro path profile v1\nroutine f\nroutine f\n"
            )

    def test_comments_and_blanks_tolerated(self):
        text = "# repro path profile v1\n\n# comment\nroutine f\npath 2 a b\n"
        profiles = loads_profiles(text)
        assert profiles["f"].count(BLPath(("a", "b"))) == 2
