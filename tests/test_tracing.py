"""Data-flow tracing tests: Figure 4's algorithm, Theorem 3, recording-edge
marking (Lemmas 1–2), and profile translation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automaton import QualificationAutomaton
from repro.core import trace, translate_path, translate_profile
from repro.interp.profiler import TraceProfiler
from repro.ir import Cfg, ENTRY, EXIT, IRBuilder
from repro.profiles import (
    BLPath,
    PathProfile,
    recording_edges,
    select_hot_paths,
    split_trace,
)

from conftest import random_cfgs, random_walks


def loop_function():
    b = IRBuilder("f", ["n"])
    b.block("a")
    b.assign("i", 0)
    b.jump("b")
    b.block("b")
    b.binop("c", "lt", "i", "n")
    b.branch("c", "body", "out")
    b.block("body")
    b.binop("i", "add", "i", 1)
    b.jump("b")
    b.block("out")
    b.ret("i")
    return b.finish()


def traced_loop(hot_paths=None):
    fn = loop_function()
    cfg = Cfg.from_function(fn)
    rec = recording_edges(cfg)
    if hot_paths is None:
        hot_paths = [BLPath(("a", "b", "body", "b"))]
    automaton = QualificationAutomaton(rec, hot_paths)
    return fn, cfg, rec, automaton, trace(fn, cfg, rec, automaton)


class TestTracedStructure:
    def test_entry_and_exit_states_are_q_dot(self):
        _, cfg, _, automaton, hpg = traced_loop()
        assert hpg.cfg.entry == (ENTRY, automaton.q_dot)
        assert hpg.cfg.exit == (EXIT, automaton.q_dot)

    def test_all_recording_targets_are_q_dot(self):
        _, _, _, automaton, hpg = traced_loop()
        for _, target in hpg.recording:
            assert target[1] == automaton.q_dot

    def test_recording_edges_correspond_to_original(self):
        _, _, rec, _, hpg = traced_loop()
        for (u, v) in hpg.cfg.edges:
            original_edge = (u[0], v[0])
            assert (((u, v) in hpg.recording) == (original_edge in rec))

    def test_hot_path_is_isolated(self):
        """The spine of the hot path gets dedicated duplicates."""
        _, _, _, automaton, hpg = traced_loop()
        b_copies = hpg.duplicates("b")
        assert len(b_copies) >= 2  # (b, on-spine) and (b, off-spine)

    def test_each_vertex_has_one_successor_per_original_edge(self):
        _, cfg, _, _, hpg = traced_loop()
        for vertex in hpg.cfg.vertices:
            orig_succs = [s[0] for s in hpg.cfg.succs(vertex)]
            assert len(orig_succs) == len(set(orig_succs))
            assert set(orig_succs) <= set(cfg.succs(vertex[0]))

    def test_view_maps_blocks_and_labels(self):
        fn, _, _, _, hpg = traced_loop()
        view = hpg.view()
        for vertex in hpg.cfg.vertices:
            if vertex[0] in fn.blocks:
                assert view.block_of(vertex) is fn.blocks[vertex[0]]
                assert view.label_of(vertex) == vertex[0]
            else:
                assert view.block_of(vertex) is None

    def test_num_real_vertices_excludes_virtual(self):
        fn, _, _, _, hpg = traced_loop()
        reals = [v for v in hpg.cfg.vertices if v[0] in fn.blocks]
        assert hpg.num_real_vertices == len(reals)

    def test_growth_over(self):
        fn, _, _, _, hpg = traced_loop()
        growth = hpg.growth_over(len(fn.blocks))
        assert growth >= 0.0

    def test_tracing_may_produce_irreducible_graph(self, example_module, example_profile):
        """The paper: 'the HPG in Figure 5 is not [reducible]'."""
        from repro.core import run_qualified

        qa = run_qualified(
            example_module.function("work"), example_profile, ca=1.0
        )
        assert not qa.hpg.cfg.is_reducible()


class TestTheorem3:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_traced_pairs_iff_reachable_by_real_paths(self, data):
        """(v, q) is traced iff some entry path drives the automaton to q at
        v — checked by enumerating bounded random walks."""
        cfg = data.draw(random_cfgs(max_blocks=5))
        rec = recording_edges(cfg)
        # Derive hot paths from a few random walks, like a real profile.
        walk = data.draw(random_walks(cfg))
        profile = PathProfile()
        for p in split_trace(walk, rec):
            profile.add(p)
        hot = select_hot_paths(profile, {v: 1 for v in cfg.vertices}, 1.0)
        automaton = QualificationAutomaton(rec, hot)

        fn = loop_function()  # any function works; tracing uses only the cfg
        hpg = trace(fn, cfg, rec, automaton)

        # Direction 1: walk any random trace through the automaton; every
        # visited (v, q) pair must be a traced vertex.
        for _ in range(3):
            t = data.draw(random_walks(cfg))
            state = automaton.q_dot
            assert (t[0], state) in hpg.cfg.vertices
            prev = t[0]
            for v in t[1:]:
                state = automaton.transition(state, (prev, v))
                assert (v, state) in hpg.cfg.vertices
                prev = v

        # Direction 2: every traced vertex is reachable in the traced graph
        # (the worklist construction only adds reachable pairs).
        assert set(hpg.cfg.vertices) == hpg.cfg.reachable()


class TestProfileTranslation:
    def test_lemma2_unique_traced_path(self):
        fn, cfg, rec, automaton, hpg = traced_loop()
        original = BLPath(("a", "b", "body", "b"))
        traced_path = translate_path(original, hpg)
        assert [v[0] for v in traced_path.vertices] == list(original.vertices)
        assert traced_path.vertices[0][1] == automaton.q_dot

    def test_recording_edges_preserved_positionally(self):
        """Lemma 1: a Ball–Larus path begins at edge k in the original walk
        iff one begins at edge k in the traced walk."""
        fn, cfg, rec, automaton, hpg = traced_loop()
        walk = [ENTRY, "a", "b", "body", "b", "body", "b", "out", EXIT]
        original_paths = split_trace(walk, rec)
        # Drive the traced graph along the same walk.
        state = automaton.q_dot
        traced_walk = [(walk[0], state)]
        prev = walk[0]
        for v in walk[1:]:
            state = automaton.transition(state, (prev, v))
            traced_walk.append((v, state))
            prev = v
        traced_paths = split_trace(traced_walk, hpg.recording)
        assert len(traced_paths) == len(original_paths)
        for op, tp in zip(original_paths, traced_paths):
            assert [v[0] for v in tp.vertices] == list(op.vertices)

    def test_translation_preserves_counts_and_weights(self):
        fn, cfg, rec, automaton, hpg = traced_loop()
        profile = PathProfile()
        profile.add(BLPath(("a", "b", "body", "b")), 10)
        profile.add(BLPath(("b", "out", EXIT)), 10)
        translated = translate_profile(profile, hpg)
        assert translated.total_count == profile.total_count
        sizes = {label: blk.size for label, blk in fn.blocks.items()}
        traced_sizes = {
            v: sizes.get(v[0], 0) for v in hpg.cfg.vertices
        }
        assert translated.total_instructions(traced_sizes) == (
            profile.total_instructions(sizes)
        )

    def test_untraceable_path_rejected(self):
        import pytest

        fn, cfg, rec, automaton, hpg = traced_loop()
        with pytest.raises(ValueError, match="does not exist"):
            translate_path(BLPath(("out", "a")), hpg)  # not a CFG edge
