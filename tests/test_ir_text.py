"""Textual IR round-trip and parse-error tests."""

import pytest

from repro.ir import (
    ArrayDecl,
    IRBuilder,
    IRSyntaxError,
    Module,
    parse_function,
    parse_module,
)

FULL_MODULE = """\
array data[16] = {1, 2, 3}

array scratch[8]

func helper(a, b) {
entry:
  t = add a, b
  u = neg t
  v = lnot u
  ret v
}

func main(n) {
entry:
  i = 0
  jump loop
loop:
  c = lt i, n
  branch c, body, done
body:
  x = load data[i]
  store scratch[0] = x
  r = call helper(x, i)
  call helper(x, i)
  print r, x
  i = add i, 1
  jump loop
done:
  ret 0
}
"""


class TestRoundTrip:
    def test_module_round_trip(self):
        module = parse_module(FULL_MODULE)
        assert str(parse_module(str(module))) == str(module)

    def test_every_instruction_survives(self):
        module = parse_module(FULL_MODULE)
        main = module.function("main")
        body = main.blocks["body"]
        kinds = [type(i).__name__ for i in body.instrs]
        assert kinds == ["Load", "Store", "Call", "Call", "Print", "BinOp"]

    def test_array_init_preserved(self):
        module = parse_module(FULL_MODULE)
        assert module.arrays["data"].init == (1, 2, 3)
        assert module.arrays["scratch"].init == ()

    def test_builder_output_parses(self):
        b = IRBuilder("f", ["x"])
        b.block("entry")
        b.unop("y", "neg", "x")
        b.binop("z", "shl", "y", 2)
        b.branch("z", "a", "c")
        b.block("a")
        b.ret("z")
        b.block("c")
        b.ret()
        fn = b.finish()
        assert str(parse_function(str(fn))) == str(fn)

    def test_negative_constants(self):
        fn = parse_function("func f() {\nentry:\n  x = -5\n  ret x\n}")
        assert fn.blocks["entry"].instrs[0].src.value == -5

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nfunc f() {\nentry:\n  # another\n  ret\n}\n"
        fn = parse_function(text)
        assert list(fn.blocks) == ["entry"]


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "func f() {\nentry:\n  ret\n",  # missing brace
            "func f() {\n  ret\n}",  # instruction outside block
            "func f() {\nentry:\n  ret\n  x = 1\n}",  # after terminator
            "func f() {\nentry:\n  x ,= 1\n}",  # garbage instruction
            "wibble",  # not a function
        ],
    )
    def test_bad_function_raises(self, bad):
        with pytest.raises(IRSyntaxError):
            parse_function(bad)

    def test_bad_module_top_level(self):
        with pytest.raises(IRSyntaxError):
            parse_module("not a declaration")

    def test_trailing_garbage_after_function(self):
        with pytest.raises(IRSyntaxError):
            parse_function("func f() {\nentry:\n  ret\n}\ntrailing")

    def test_no_function_found(self):
        with pytest.raises(IRSyntaxError):
            parse_function("# only a comment")


class TestPrinting:
    def test_module_str_includes_arrays(self):
        m = Module()
        m.add_array(ArrayDecl("a", 4, (7,)))
        text = str(m)
        assert "array a[4] = {7}" in text
