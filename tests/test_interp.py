"""Interpreter tests: semantics, traps, costs, taint, and limits."""

import pytest

from repro.interp import (
    CostModel,
    ExecutionLimit,
    Interpreter,
    Trap,
    run_module,
)
from repro.ir import ArrayDecl, IRBuilder, Module


def make_module(build_main, arrays=()):
    m = Module()
    for decl in arrays:
        m.add_array(decl)
    b = IRBuilder("main", build_main.__defaults__[0] if False else [])
    return m, b


def module_of(fn, arrays=()):
    m = Module()
    for decl in arrays:
        m.add_array(decl)
    m.add_function(fn)
    return m


class TestBasics:
    def test_return_value(self):
        b = IRBuilder("main", ["a", "b"])
        b.block("entry")
        b.binop("s", "add", "a", "b")
        b.ret("s")
        result = run_module(module_of(b.finish()), args=[3, 4])
        assert result.return_value == 7

    def test_arg_count_checked(self):
        b = IRBuilder("main", ["a"])
        b.block("entry")
        b.ret("a")
        with pytest.raises(Trap, match="expects 1"):
            run_module(module_of(b.finish()), args=[])

    def test_missing_entry_function(self):
        b = IRBuilder("main")
        b.block("entry")
        b.ret()
        with pytest.raises(Trap, match="no function"):
            run_module(module_of(b.finish()), entry_function="ghost")

    def test_undefined_variable_traps(self):
        b = IRBuilder("main")
        b.block("entry")
        b.binop("x", "add", "ghost", 1)
        b.ret("x")
        with pytest.raises(Trap, match="undefined variable"):
            run_module(module_of(b.finish()))

    def test_instr_count_includes_terminators(self):
        b = IRBuilder("main")
        b.block("entry")
        b.assign("x", 1)
        b.ret("x")
        result = run_module(module_of(b.finish()))
        assert result.instr_count == 2

    def test_block_counts(self):
        b = IRBuilder("main", ["n"])
        b.block("entry")
        b.assign("i", 0)
        b.jump("loop")
        b.block("loop")
        b.binop("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.binop("i", "add", "i", 1)
        b.jump("loop")
        b.block("done")
        b.ret()
        result = run_module(module_of(b.finish()), args=[3])
        assert result.block_counts[("main", "body")] == 3
        assert result.block_counts[("main", "loop")] == 4


class TestMemory:
    def _array_module(self):
        b = IRBuilder("main", ["i"])
        b.block("entry")
        b.load("x", "a", "i")
        b.store("a", 0, "x")
        b.ret("x")
        return module_of(b.finish(), [ArrayDecl("a", 4, (5, 6, 7, 8))])

    def test_load_store(self):
        result = run_module(self._array_module(), args=[2])
        assert result.return_value == 7
        assert result.memory["a"] == [7, 6, 7, 8]

    @pytest.mark.parametrize("index", [-1, 4, 100])
    def test_out_of_bounds_load_traps(self, index):
        with pytest.raises(Trap, match="out of range"):
            run_module(self._array_module(), args=[index])

    def test_inputs_override_arrays(self):
        result = run_module(self._array_module(), args=[1], inputs={"a": [9, 9]})
        assert result.return_value == 9

    def test_unknown_input_array_rejected(self):
        with pytest.raises(Trap, match="not declared"):
            run_module(self._array_module(), args=[0], inputs={"zzz": [1]})

    def test_oversized_input_rejected(self):
        with pytest.raises(Trap, match="holds"):
            run_module(self._array_module(), args=[0], inputs={"a": [0] * 10})

    def test_undeclared_array_traps(self):
        b = IRBuilder("main")
        b.block("entry")
        b.load("x", "ghost", 0)
        b.ret("x")
        with pytest.raises(Trap, match="undeclared array"):
            run_module(module_of(b.finish()))


class TestCalls:
    def test_user_function_call(self):
        m = Module()
        b = IRBuilder("double", ["x"])
        b.block("entry")
        b.binop("r", "mul", "x", 2)
        b.ret("r")
        m.add_function(b.finish())
        b = IRBuilder("main", ["n"])
        b.block("entry")
        b.call("r", "double", "n")
        b.ret("r")
        m.add_function(b.finish())
        assert run_module(m, args=[21]).return_value == 42

    def test_call_depth_limit(self):
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "main")
        b.ret("r")
        with pytest.raises(Trap, match="depth"):
            run_module(module_of(b.finish()))

    def test_void_result_used_traps(self):
        m = Module()
        b = IRBuilder("noret", [])
        b.block("entry")
        b.ret()
        m.add_function(b.finish())
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "noret")
        b.ret("r")
        m.add_function(b.finish())
        with pytest.raises(Trap, match="returned no value"):
            run_module(m)

    @pytest.mark.parametrize(
        "func,args,expected",
        [
            ("abs", [-3], 3),
            ("min2", [4, 9], 4),
            ("max2", [4, 9], 9),
            ("clamp", [99, 0, 10], 10),
            ("clamp", [-5, 0, 10], 0),
            ("clamp", [5, 0, 10], 5),
        ],
    )
    def test_builtins(self, func, args, expected):
        b = IRBuilder("main", [f"a{i}" for i in range(len(args))])
        b.block("entry")
        b.call("r", func, *[f"a{i}" for i in range(len(args))])
        b.ret("r")
        assert run_module(module_of(b.finish()), args=args).return_value == expected

    def test_builtin_arity_trap(self):
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "abs", 1, 2)
        b.ret("r")
        with pytest.raises(Trap, match="expects 1"):
            run_module(module_of(b.finish()))


class TestLimits:
    def test_execution_limit(self):
        b = IRBuilder("main")
        b.block("entry")
        b.jump("spin")
        b.block("spin")
        b.jump("spin")
        m = module_of(b.finish())
        with pytest.raises(ExecutionLimit):
            Interpreter(m, max_steps=1000).run()


class TestCostModel:
    def _straightline(self, *ops):
        b = IRBuilder("main")
        b.block("entry")
        for i, (op, a, c) in enumerate(ops):
            b.binop(f"x{i}", op, a, c)
        b.ret()
        return module_of(b.finish())

    def test_mul_costs_more_than_add(self):
        cm = CostModel()
        add = run_module(self._straightline(("add", 1, 2)), cost_model=cm).cost
        mul = run_module(self._straightline(("mul", 1, 2)), cost_model=cm).cost
        assert mul - add == cm.mul - cm.binop > 0

    def test_fallthrough_is_free_taken_jump_pays(self):
        cm = CostModel()
        # jump to the next block in layout order: no penalty.
        b = IRBuilder("main")
        b.block("entry")
        b.jump("next")
        b.block("next")
        b.ret()
        fall = run_module(module_of(b.finish()), cost_model=cm).cost
        # jump over a block: taken penalty.
        b = IRBuilder("main")
        b.block("entry")
        b.jump("far")
        b.block("middle")
        b.ret()
        b.block("far")
        b.jump("middle")
        m = module_of(b.finish())
        m.functions["main"].blocks["middle"]  # keep it reachable via far
        taken = run_module(m, cost_model=cm).cost
        assert taken > fall

    def test_costs_are_deterministic(self):
        m = self._straightline(("add", 1, 2), ("div", 4, 2))
        assert run_module(m).cost == run_module(m).cost


class TestTaint:
    def test_params_and_loads_are_tainted_constants_are_not(self):
        b = IRBuilder("main", ["p"])
        b.block("entry")
        b.assign("c", 41)                  # untainted
        b.binop("c2", "add", "c", 1)       # untainted
        b.binop("t", "add", "p", 1)        # tainted via param
        b.load("l", "a", 0)                # tainted via memory
        b.ret("c2")
        m = module_of(b.finish(), [ArrayDecl("a", 1)])
        result = run_module(m, args=[5])
        stats = result.site_stats
        assert stats[("main", "entry", 0)].tainted_executions == 0
        assert stats[("main", "entry", 1)].tainted_executions == 0
        assert stats[("main", "entry", 2)].tainted_executions == 1
        assert stats[("main", "entry", 3)].tainted_executions == 1

    def test_call_results_are_tainted(self):
        m = Module()
        b = IRBuilder("konst")
        b.block("entry")
        b.ret(7)
        m.add_function(b.finish())
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "konst")
        b.binop("r2", "add", "r", 0)
        b.ret("r2")
        m.add_function(b.finish())
        result = run_module(m)
        assert result.site_stats[("main", "entry", 1)].tainted_executions == 1

    def test_site_invariance_tracking(self):
        b = IRBuilder("main", ["n"])
        b.block("entry")
        b.assign("i", 0)
        b.jump("loop")
        b.block("loop")
        b.binop("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.binop("i", "add", "i", 1)
        b.assign("k", 5)
        b.jump("loop")
        b.block("done")
        b.ret()
        result = run_module(module_of(b.finish()), args=[3])
        assert not result.site_stats[("main", "body", 0)].invariant  # i varies
        assert result.site_stats[("main", "body", 1)].invariant  # k = 5 always

    def test_profile_modes(self):
        b = IRBuilder("main")
        b.block("entry")
        b.ret()
        m = module_of(b.finish())
        assert run_module(m, profile_mode=None).profiles == {}
        both = run_module(m, profile_mode="both")
        assert both.profiles["main"] == both.trace_profiles["main"]
        with pytest.raises(ValueError):
            run_module(m, profile_mode="wibble")


def loop_module():
    b = IRBuilder("main", ["n"])
    b.block("entry")
    b.assign("i", 0)
    b.jump("loop")
    b.block("loop")
    b.binop("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.binop("i", "add", "i", 1)
    b.jump("loop")
    b.block("done")
    b.ret()
    return module_of(b.finish())


class TestRecursionLimit:
    def test_limit_restored_after_run(self):
        import sys

        b = IRBuilder("main")
        b.block("entry")
        b.ret()
        m = module_of(b.finish())
        saved = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1500)
            run_module(m)
            assert sys.getrecursionlimit() == 1500
        finally:
            sys.setrecursionlimit(saved)

    def test_limit_restored_after_trap(self):
        import sys

        b = IRBuilder("main")
        b.block("entry")
        b.binop("x", "add", "ghost", 1)
        b.ret("x")
        m = module_of(b.finish())
        saved = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1500)
            with pytest.raises(Trap):
                run_module(m)
            assert sys.getrecursionlimit() == 1500
        finally:
            sys.setrecursionlimit(saved)

    def test_higher_existing_limit_untouched(self):
        import sys

        b = IRBuilder("main")
        b.block("entry")
        b.ret()
        m = module_of(b.finish())
        saved = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(9000)
            run_module(m)
            assert sys.getrecursionlimit() == 9000
        finally:
            sys.setrecursionlimit(saved)


class TestProfileCrossValidation:
    def test_both_mode_agrees_on_retreating_edge(self):
        # The loop's back edge is a retreating (recording) edge, so each
        # iteration terminates one Ball-Larus path; the efficient profiler
        # must agree with the trace-splitting oracle path-for-path.
        from repro.ir.cfg import Cfg
        from repro.profiles import recording_edges

        m = loop_module()
        cfg = Cfg.from_function(m.functions["main"])
        assert ("body", "loop") in recording_edges(cfg)
        result = run_module(m, args=[3], profile_mode="both")
        assert result.profiles["main"] == result.trace_profiles["main"]
        assert result.profiles["main"].num_distinct >= 3
        assert result.profiles["main"].total_count >= 4
