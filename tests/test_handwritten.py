"""Hand-written algorithm targets: real control flow, real sharpening.

The sieve is an actual algorithm port, not a synthetic tile — its branch
structure (prime/composite in the outer loop, fresh/overlapping mark in the
inner loop) comes from number theory, not from the generator.  The paper's
claim must survive contact with it: at full path coverage (CA = 1.0),
path-qualified constant propagation must find *strictly more* dynamic
non-local constants than the unqualified Wegman-Zadek analysis.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import WorkloadRun
from repro.frontend import compile_program
from repro.ir import validate_module
from repro.workloads.handwritten import (
    HANDWRITTEN_NAMES,
    all_handwritten,
    get_handwritten,
)


def test_registry():
    assert "sieve" in HANDWRITTEN_NAMES
    assert set(all_handwritten()) == set(HANDWRITTEN_NAMES)
    with pytest.raises(KeyError, match="unknown hand-written"):
        get_handwritten("nonesuch")


@pytest.fixture(scope="module")
def sieve_run():
    return WorkloadRun(get_handwritten("sieve"))


def test_sieve_compiles_and_computes_primes(sieve_run):
    validate_module(compile_program(get_handwritten("sieve").source))
    # pi(400) = 78: the program must actually be a sieve.
    assert sieve_run.train.return_value == 78


def test_sieve_qualified_beats_wz_at_full_coverage(sieve_run):
    """The satellite assertion: strictly more qualified than iterative
    non-local constants at CA = 1.0."""
    agg = sieve_run.aggregate_classification(1.0, 0.95)
    assert agg.qualified_nonlocal > agg.iterative_nonlocal
    assert agg.constant_increase > 0
    # WZ itself is not degenerate on this program — the win is real
    # sharpening, not a vacuous baseline.
    assert agg.iterative_nonlocal > 0


def test_sieve_is_checks_clean():
    from repro.checks.runner import check_program

    wl = get_handwritten("sieve")
    diags = check_program(
        compile_program(wl.source),
        list(wl.train_args),
        wl.train_inputs,
        ca=1.0,
        cr=0.95,
        workload="sieve",
    )
    assert not diags.has_errors, diags.render_text()
    assert not diags.warnings, diags.render_text()
