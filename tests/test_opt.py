"""Optimization-pass tests: materialization, folding, DCE, layout — all
checked against interpreter behaviour."""

import pytest

from repro.core import run_qualified
from repro.dataflow import GraphView, analyze
from repro.interp import Interpreter, run_module
from repro.ir import (
    Assign,
    Const,
    IRBuilder,
    Jump,
    Module,
    validate_function,
    validate_module,
)
from repro.opt import (
    eliminate_dead_code,
    fold_function,
    layout_function,
    materialize,
    remove_unreachable,
    vertex_labels,
)
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)


@pytest.fixture(scope="module")
def pipeline():
    module = running_example_module()
    n, inputs = training_run_inputs()
    run = Interpreter(module).run([n], inputs)
    qa = run_qualified(module.function("work"), run.profiles["work"], ca=1.0)
    return module, n, inputs, run, qa


def swap_work(module, fn):
    m = module.copy()
    del m.functions["work"]
    m.add_function(fn)
    return m


class TestMaterialize:
    def test_unfolded_materialization_preserves_behaviour(self, pipeline):
        module, n, inputs, run, qa = pipeline
        dup = materialize(qa.reduced)
        m = swap_work(module, dup)
        validate_module(m)
        result = run_module(m, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output
        assert result.return_value == run.return_value
        assert result.instr_count == run.instr_count  # same work, new labels

    def test_hpg_materialization_also_equivalent(self, pipeline):
        module, n, inputs, run, qa = pipeline
        dup = materialize(qa.hpg)
        m = swap_work(module, dup)
        validate_module(m)
        result = run_module(m, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output

    def test_folded_materialization_preserves_behaviour(self, pipeline):
        module, n, inputs, run, qa = pipeline
        opt = materialize(qa.reduced, qa.reduced_analysis, fold=True)
        m = swap_work(module, opt)
        validate_module(m)
        result = run_module(m, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output

    def test_folding_replaces_constant_sites(self, pipeline):
        module, n, inputs, run, qa = pipeline
        opt = materialize(qa.reduced, qa.reduced_analysis, fold=True)
        # Some duplicate of H must now assign x directly.
        folded_assigns = [
            instr
            for label, block in opt.blocks.items()
            if label.startswith("H")
            for instr in block.instrs
            if isinstance(instr, Assign) and instr.dest == "x"
        ]
        assert folded_assigns, "no folded x = const found"
        assert {i.src.value for i in folded_assigns} <= {4, 5, 6}

    def test_fold_requires_analysis(self, pipeline):
        _, _, _, _, qa = pipeline
        with pytest.raises(ValueError):
            materialize(qa.reduced, None, fold=True)

    def test_vertex_labels_unique(self, pipeline):
        _, _, _, _, qa = pipeline
        labels = vertex_labels(qa.reduced)
        assert len(set(labels.values())) == len(labels)

    def test_single_copy_keeps_original_label(self, pipeline):
        _, _, _, _, qa = pipeline
        labels = vertex_labels(qa.reduced)
        a_labels = [l for v, l in labels.items() if v[0] == "A"]
        assert a_labels == ["A"]


class TestFoldFunction:
    def test_branch_folding_removes_dead_leg(self):
        b = IRBuilder("main")
        b.block("entry")
        b.assign("c", 1)
        b.branch("c", "live", "dead")
        b.block("live")
        b.ret(1)
        b.block("dead")
        b.ret(2)
        fn = b.finish()
        folded = fold_function(fn, analyze(GraphView.from_function(fn)))
        assert isinstance(folded.blocks["entry"].terminator, Jump)
        assert "dead" not in folded.blocks
        validate_function(folded)
        m = Module()
        m.add_function(folded)
        assert run_module(m).return_value == 1

    def test_already_constant_assignments_untouched(self):
        b = IRBuilder("main")
        b.block("entry")
        b.assign("x", 5)
        b.ret("x")
        fn = b.finish()
        folded = fold_function(fn, analyze(GraphView.from_function(fn)))
        instr = folded.blocks["entry"].instrs[0]
        assert isinstance(instr, Assign) and instr.src == Const(5)

    def test_fold_is_idempotent(self):
        b = IRBuilder("main")
        b.block("entry")
        b.assign("x", 2)
        b.binop("y", "mul", "x", 3)
        b.ret("y")
        fn = b.finish()
        once = fold_function(fn, analyze(GraphView.from_function(fn)))
        twice = fold_function(once, analyze(GraphView.from_function(once)))
        assert str(once) == str(twice)


class TestRemoveUnreachable:
    def test_island_removed(self):
        b = IRBuilder("main")
        b.block("entry")
        b.ret()
        b.block("island")
        b.ret()
        fn = b.finish()
        remove_unreachable(fn)
        assert list(fn.blocks) == ["entry"]


class TestDce:
    def test_dead_pure_code_removed(self):
        b = IRBuilder("main")
        b.block("entry")
        b.assign("dead", 42)
        b.binop("alive", "add", 1, 2)
        b.ret("alive")
        fn = b.finish()
        eliminate_dead_code(fn)
        dests = [i.dest for i in fn.blocks["entry"].instrs]
        assert dests == ["alive"]

    def test_dce_cascades(self):
        b = IRBuilder("main")
        b.block("entry")
        b.assign("a", 1)
        b.binop("b", "add", "a", 1)  # only used by dead c
        b.binop("c", "add", "b", 1)  # dead
        b.ret(0)
        fn = b.finish()
        eliminate_dead_code(fn)
        assert fn.blocks["entry"].instrs == []

    def test_impure_instructions_kept(self):
        b = IRBuilder("main")
        b.block("entry")
        b.store("m", 0, 1)
        b.call(None, "abs", 1)
        b.call("unused", "abs", 1)
        b.emit_print(3)
        b.ret()
        fn = b.finish()
        before = len(fn.blocks["entry"].instrs)
        eliminate_dead_code(fn)
        assert len(fn.blocks["entry"].instrs) == before

    def test_dce_preserves_behaviour(self, pipeline):
        module, n, inputs, run, qa = pipeline
        opt = materialize(qa.reduced, qa.reduced_analysis, fold=True)
        eliminate_dead_code(opt)
        m = swap_work(module, opt)
        validate_module(m)
        result = run_module(m, args=[n], inputs=inputs, profile_mode=None)
        assert result.output == run.output

    def test_dce_plus_fold_reduces_cost(self, pipeline):
        module, n, inputs, run, qa = pipeline
        opt = materialize(qa.reduced, qa.reduced_analysis, fold=True)
        eliminate_dead_code(opt)
        m = swap_work(module, opt)
        result = run_module(m, args=[n], inputs=inputs, profile_mode=None)
        assert result.cost < run.cost


class TestLayout:
    def _chain_module(self):
        b = IRBuilder("main", ["n"])
        b.block("entry")
        b.assign("i", 0)
        b.jump("head")
        b.block("head")
        b.binop("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        # Cold block placed between head and body on purpose.
        b.block("done")
        b.ret("i")
        b.block("body")
        b.binop("i", "add", "i", 1)
        b.jump("head")
        m = Module()
        m.add_function(b.finish())
        return m

    def test_layout_moves_hot_successor_next(self):
        m = self._chain_module()
        freqs = {("head", "body"): 100, ("head", "done"): 1, ("body", "head"): 100}
        layout_function(m.functions["main"], freqs)
        order = list(m.functions["main"].blocks)
        assert order.index("body") == order.index("head") + 1

    def test_layout_preserves_behaviour_and_entry(self):
        m = self._chain_module()
        baseline = run_module(m, args=[10], profile_mode=None)
        layout_function(
            m.functions["main"], {("head", "body"): 100}
        )
        validate_module(m)
        after = run_module(m, args=[10], profile_mode=None)
        assert after.return_value == baseline.return_value

    def test_layout_reduces_cost_on_hot_loop(self):
        m = self._chain_module()
        before = run_module(m, args=[200], profile_mode=None).cost
        freqs = {("head", "body"): 100, ("body", "head"): 100}
        layout_function(m.functions["main"], freqs)
        after = run_module(m, args=[200], profile_mode=None).cost
        assert after < before

    def test_layout_without_frequencies_is_deterministic(self):
        m1 = self._chain_module()
        m2 = self._chain_module()
        layout_function(m1.functions["main"])
        layout_function(m2.functions["main"])
        assert list(m1.functions["main"].blocks) == list(m2.functions["main"].blocks)

    def test_all_blocks_survive_layout(self):
        m = self._chain_module()
        before = set(m.functions["main"].blocks)
        layout_function(m.functions["main"], {})
        assert set(m.functions["main"].blocks) == before
