"""The target x instance suite: resolution, cells, archive, driver, CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.pipeline import ParallelDriver
from repro.workloads.matrix import (
    INSTANCES,
    TARGET_NAMES,
    Instance,
    MatrixCell,
    build_targets,
    cell_key,
    load_archived,
    load_cell,
    resolve_instance,
    resolve_instances,
    resolve_target,
    run_cell,
    run_suite,
)

FAST_TARGETS = ("sieve", "gen-small")
FAST_INSTANCES = ("base", "bitset")


# -- resolution ---------------------------------------------------------------


def test_every_registered_target_resolves():
    for name in TARGET_NAMES:
        wl = resolve_target(name)
        assert wl.source.strip()
        assert wl.train_args or wl.train_inputs


def test_adhoc_genspec_target_resolves():
    wl = resolve_target("gen:seed=7,funcs=1,blocks=10,train=3,ref=4")
    assert wl.train_args == (3,)
    assert "func main" in wl.source


def test_unknown_target_and_instance_rejected():
    with pytest.raises(KeyError, match="unknown target"):
        resolve_target("nonesuch")
    with pytest.raises(KeyError, match="unknown instance"):
        resolve_instance("nonesuch")


def test_instance_validation():
    with pytest.raises(ValueError, match="bad engine"):
        Instance("x", engine="jit")
    with pytest.raises(ValueError, match="bad strategy"):
        Instance("x", strategy="random")


def test_registered_instances_cover_the_axes():
    engines = {i.engine for i in INSTANCES.values()}
    dataflow = {i.dataflow_engine for i in INSTANCES.values()}
    strategies = {i.strategy for i in INSTANCES.values()}
    cas = {i.ca for i in INSTANCES.values()}
    assert engines == {"compiled", "reference"}
    assert {"auto", "generic", "compiled"} <= dataflow
    assert {"rpo", "lifo"} <= strategies
    assert 1.0 in cas


# -- cells --------------------------------------------------------------------


@pytest.fixture(scope="module")
def sieve_cell():
    return run_cell("sieve", INSTANCES["base"])


def test_cell_is_a_differential_verdict(sieve_cell):
    assert sieve_cell.interp_parity
    assert sieve_cell.dataflow_parity
    assert sieve_cell.checks_clean
    assert sieve_cell.ok
    assert sieve_cell.cfg_nodes > 0
    assert sieve_cell.qualified_nonlocal > 0


def test_cell_round_trips_through_json(sieve_cell):
    clone = MatrixCell.from_dict(json.loads(json.dumps(sieve_cell.to_dict())))
    assert clone == sieve_cell
    assert clone.ok


def test_cell_key_is_content_addressed():
    wl = resolve_target("sieve")
    base = cell_key(wl, INSTANCES["base"])
    assert base == cell_key(resolve_target("sieve"), INSTANCES["base"])
    assert base != cell_key(wl, INSTANCES["bitset"])
    assert base != cell_key(resolve_target("gen-small"), INSTANCES["base"])


# -- phases -------------------------------------------------------------------


def test_build_phase_reports_all_targets():
    report = build_targets(FAST_TARGETS)
    for name in FAST_TARGETS:
        assert name in report
    assert "functions" in report


@pytest.fixture(scope="module")
def suite_result(tmp_path_factory):
    archive = str(tmp_path_factory.mktemp("archive"))
    result = run_suite(
        FAST_TARGETS, resolve_instances(FAST_INSTANCES), archive_dir=archive
    )
    return result, archive


def test_suite_runs_end_to_end(suite_result):
    result, _ = suite_result
    assert result.ok, result.summary()
    assert len(result.cells) == len(FAST_TARGETS) * len(FAST_INSTANCES)
    report = result.report()
    for name in FAST_TARGETS:
        assert name in report


def test_archive_layout_and_report_phase(suite_result):
    result, archive = suite_result
    # Content-addressed layout: <archive>/<key[:2]>/<key>.json
    for (target, iname), cell in result.cells.items():
        path = os.path.join(archive, cell.key[:2], f"{cell.key}.json")
        assert os.path.exists(path), (target, iname)
        assert load_cell(archive, cell.key) == cell
    # Report phase re-renders from the archive alone, byte-identically.
    again = load_archived(
        archive, FAST_TARGETS, resolve_instances(FAST_INSTANCES)
    )
    assert again.report() == result.report()


def test_report_phase_names_missing_cells(tmp_path):
    with pytest.raises(FileNotFoundError, match="sieve/base"):
        load_archived(str(tmp_path), ["sieve"], resolve_instances(["base"]))


def test_parallel_driver_matches_serial(suite_result):
    serial, _ = suite_result
    parallel = ParallelDriver(jobs=2).suite(FAST_TARGETS, FAST_INSTANCES)
    assert parallel.ok
    assert parallel.report() == serial.report()


# -- CLI ----------------------------------------------------------------------


def test_cli_suite_list(capsys):
    assert main(["suite", "--list"]) == 0
    out = capsys.readouterr().out
    assert "sieve" in out and "gen-1k" in out and "full-cover" in out


def test_cli_suite_build_phase(capsys):
    assert main(
        ["suite", "--targets", "sieve", "--phase", "build"]
    ) == 0
    assert "compiled and validated" in capsys.readouterr().out


def test_cli_suite_run_and_report(tmp_path, capsys):
    archive = str(tmp_path / "archive")
    out_dir = str(tmp_path / "out")
    rc = main(
        [
            "suite",
            "--targets", "sieve",
            "--instances", "base",
            "--archive", archive,
            "--out", out_dir,
        ]
    )
    assert rc == 0
    capsys.readouterr()
    # The report phase needs only the archive.
    rc = main(
        [
            "suite",
            "--targets", "sieve",
            "--instances", "base",
            "--phase", "report",
            "--archive", archive,
        ]
    )
    assert rc == 0
    assert "sieve" in capsys.readouterr().out
    with open(os.path.join(out_dir, "suite.txt")) as f:
        assert "differential cells" in f.read()


def test_cli_suite_rejects_unknown_names(capsys):
    with pytest.raises(SystemExit, match="unknown target"):
        main(["suite", "--targets", "nonesuch"])
    with pytest.raises(SystemExit, match="unknown instance"):
        main(["suite", "--targets", "sieve", "--instances", "nonesuch"])


# -- the full registered matrix (slow tier) -----------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("instance", sorted(INSTANCES))
def test_full_instance_column_on_fast_targets(instance):
    result = run_suite(FAST_TARGETS, resolve_instances([instance]))
    assert result.ok, result.summary()
