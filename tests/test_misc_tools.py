"""Tests for the DOT exporter, block straightening, the MOP reference
solver, and the graph-view adapter."""

import pytest

from repro.dataflow import (
    BOT,
    GraphView,
    UNREACHABLE,
    analyze,
    leq_env,
    mop_for_function,
)
from repro.interp import run_module
from repro.ir import Cfg, IRBuilder, Module
from repro.ir.dot import cfg_to_dot, traced_to_dot
from repro.opt import straighten


class TestDot:
    def test_cfg_dot_contains_vertices_and_edges(self):
        cfg = Cfg(edges=[("__entry__", "a"), ("a", "__exit__")])
        dot = cfg_to_dot(cfg)
        assert dot.startswith("digraph cfg {")
        assert '"a"' in dot
        assert '"__entry__" -> "a";' in dot
        assert dot.rstrip().endswith("}")

    def test_recording_edges_dashed(self):
        cfg = Cfg(edges=[("__entry__", "a"), ("a", "__exit__")])
        dot = cfg_to_dot(cfg, recording=frozenset({("__entry__", "a")}))
        assert '"__entry__" -> "a" [style=dashed];' in dot
        assert '"a" -> "__exit__" [style=dashed];' not in dot

    def test_traced_dot_names_duplicates(self, example_qualified):
        dot = traced_to_dot(
            example_qualified.hpg,
            weights=example_qualified.reduction.weights,
        )
        assert "H@q" in dot
        assert "style=dashed" in dot  # recording edges survive tracing
        assert "lightgoldenrod" in dot  # weighted vertices highlighted

    def test_quoting(self):
        cfg = Cfg(edges=[("__entry__", 'we"ird'), ('we"ird', "__exit__")])
        dot = cfg_to_dot(cfg)
        assert '\\"' in dot


class TestStraighten:
    def _chain(self):
        b = IRBuilder("main")
        b.block("a")
        b.assign("x", 1)
        b.jump("b")
        b.block("b")
        b.binop("y", "add", "x", 1)
        b.jump("c")
        b.block("c")
        b.ret("y")
        m = Module()
        m.add_function(b.finish())
        return m

    def test_chain_collapses_to_one_block(self):
        m = self._chain()
        straighten(m.functions["main"])
        assert list(m.functions["main"].blocks) == ["a"]

    def test_behaviour_preserved(self):
        m = self._chain()
        before = run_module(m, profile_mode=None)
        straighten(m.functions["main"])
        after = run_module(m, profile_mode=None)
        assert after.return_value == before.return_value == 2
        # The jump instructions disappear; cost cannot increase (the jumps
        # were already free fall-throughs in this layout).
        assert after.instr_count < before.instr_count
        assert after.cost <= before.cost

    def test_straighten_saves_cost_on_bad_layout(self):
        b = IRBuilder("main")
        b.block("a")
        b.assign("x", 1)
        b.jump("c")  # c is laid out last: a taken jump before straightening
        b.block("b")
        b.ret("y")
        b.block("c")
        b.binop("y", "add", "x", 1)
        b.jump("b")
        m = Module()
        m.add_function(b.finish())
        before = run_module(m, profile_mode=None)
        straighten(m.functions["main"])
        after = run_module(m, profile_mode=None)
        assert after.return_value == before.return_value == 2
        assert after.cost < before.cost

    def test_multi_predecessor_target_kept(self):
        b = IRBuilder("main", ["p"])
        b.block("a")
        b.branch("p", "l", "r")
        b.block("l")
        b.jump("join")
        b.block("r")
        b.jump("join")
        b.block("join")
        b.ret(0)
        m = Module()
        m.add_function(b.finish())
        straighten(m.functions["main"])
        assert "join" in m.functions["main"].blocks

    def test_self_loop_kept(self):
        b = IRBuilder("main")
        b.block("a")
        b.jump("spin")
        b.block("spin")
        b.jump("spin")
        m = Module()
        m.add_function(b.finish())
        straighten(m.functions["main"])
        assert "spin" in m.functions["main"].blocks

    def test_entry_never_fused_away(self):
        b = IRBuilder("main")
        b.block("a")
        b.jump("b")
        b.block("b")
        b.ret(0)
        fn = b.finish()
        straighten(fn)
        assert fn.entry == "a"


class TestMop:
    def _diamond(self, left, right):
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.assign("x", left)
        b.jump("join")
        b.block("r")
        b.assign("x", right)
        b.jump("join")
        b.block("join")
        b.binop("y", "add", "x", 1)
        b.ret("y")
        return b.finish()

    def test_mop_meets_env_at_join(self):
        fn = self._diamond(5, 7)
        view = GraphView.from_function(fn)
        mop = mop_for_function(view)
        assert mop["join"].get("x") is BOT

    def test_mop_keeps_agreeing_constants(self):
        fn = self._diamond(5, 5)
        view = GraphView.from_function(fn)
        mop = mop_for_function(view)
        assert mop["join"].get("x") == 5

    def test_iterative_below_mop_on_acyclic_graphs(self):
        """Non-distributive constant propagation: the fixpoint is <= MOP."""
        fn = self._diamond(5, 7)
        view = GraphView.from_function(fn)
        mop = mop_for_function(view)
        wz = analyze(view)
        for v in view.cfg.vertices:
            assert leq_env(wz.input_env(v), mop[v]), v

    def test_mop_is_non_distributivity_witness(self):
        """x + y with (x,y) = (1,2) or (2,1): MOP over the two paths loses
        the sum; per-path composition keeps it.  The fixpoint agrees with
        MOP here, but a path-qualified analysis that separates the two paths
        recovers z = 3 on each."""
        b = IRBuilder("f", ["p"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.assign("x", 1)
        b.assign("y", 2)
        b.jump("join")
        b.block("r")
        b.assign("x", 2)
        b.assign("y", 1)
        b.jump("join")
        b.block("join")
        b.binop("z", "add", "x", "y")
        b.ret("z")
        fn = b.finish()
        view = GraphView.from_function(fn)
        mop = mop_for_function(view)
        # The meet of the two path envs loses x and y individually...
        assert mop["join"].get("x") is BOT
        # ...so even MOP cannot see that z is always 3.
        out = analyze(view).site_values("join")
        assert out[0] is BOT

    def test_loop_bounded_unrolling(self):
        b = IRBuilder("f", ["n"])
        b.block("entry")
        b.assign("i", 0)
        b.jump("head")
        b.block("head")
        b.binop("c", "lt", "i", "n")
        b.branch("c", "body", "out")
        b.block("body")
        b.binop("i", "add", "i", 1)
        b.jump("head")
        b.block("out")
        b.ret("i")
        view = GraphView.from_function(b.finish())
        mop = mop_for_function(view, max_occurrences=3)
        assert mop["head"].get("i") is BOT  # 0 meets 1 meets 2

    def test_path_explosion_guarded(self):
        b = IRBuilder("f", ["p"])
        label = "entry"
        b.block(label)
        for i in range(20):
            nxt_l, nxt_r, join = f"l{i}", f"r{i}", f"j{i}"
            b.branch("p", nxt_l, nxt_r)
            b.block(nxt_l)
            b.jump(join)
            b.block(nxt_r)
            b.jump(join)
            b.block(join)
        b.ret(0)
        view = GraphView.from_function(b.finish())
        with pytest.raises(RuntimeError, match="paths"):
            mop_for_function(view, max_paths=1000)


class TestGraphView:
    def test_from_function_identity_labels(self, example_module):
        fn = example_module.function("work")
        view = GraphView.from_function(fn)
        assert view.label_of("H") == "H"
        assert view.label_of("__entry__") is None
        assert view.block_of("H") is fn.blocks["H"]
        assert view.size() == len(fn.blocks)

    def test_succ_for_label(self, example_module):
        fn = example_module.function("work")
        view = GraphView.from_function(fn)
        assert view.succ_for_label("B", "C") == "C"
        with pytest.raises(KeyError):
            view.succ_for_label("B", "H")

    def test_succ_for_label_on_traced_graph(self, example_qualified):
        view = example_qualified.hpg.view()
        for vertex in example_qualified.hpg.duplicates("B"):
            succ = view.succ_for_label(vertex, "C")
            assert succ[0] == "C"
