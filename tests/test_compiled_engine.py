"""Differential tests: the block-compiled engine vs. the tree-walking oracle.

Every assertion here compares complete :class:`RunResult` values — output,
cost, instruction counts, block counts, path profiles, trace profiles, site
stats, and final memory — so the fast path can never silently diverge from
the reference semantics.  The running-example case runs in the fast tier on
every test invocation; the full-workload ref runs are ``slow``-marked.
"""

import pytest

from repro.frontend import compile_program
from repro.interp import ExecutionLimit, Interpreter, Trap, run_module
from repro.ir import ArrayDecl, IRBuilder, Module
from repro.workloads import WORKLOAD_NAMES, get_workload, training_run_inputs

RESULT_FIELDS = (
    "return_value",
    "output",
    "instr_count",
    "cost",
    "block_counts",
    "profiles",
    "trace_profiles",
    "site_stats",
    "memory",
)


def module_of(fn, arrays=()):
    m = Module()
    for decl in arrays:
        m.add_array(decl)
    m.add_function(fn)
    return m


def assert_results_equal(ref, com):
    for field in RESULT_FIELDS:
        assert getattr(ref, field) == getattr(com, field), field
    assert ref == com


def run_both(module, args=(), inputs=None, **kwargs):
    ref = run_module(module, args, inputs, engine="reference", **kwargs)
    com = run_module(module, args, inputs, engine="compiled", **kwargs)
    assert_results_equal(ref, com)
    return ref, com


class TestRunningExample:
    def test_differential_full_result(self, example_module):
        """Tier-1 guard: byte-identical RunResult on the running example."""
        n, inputs = training_run_inputs()
        run_both(example_module, [n], inputs, profile_mode="both")

    @pytest.mark.parametrize("mode", [None, "bl", "trace", "both"])
    def test_differential_all_profile_modes(self, example_module, mode):
        n, inputs = training_run_inputs()
        run_both(example_module, [n], inputs, profile_mode=mode)

    def test_differential_without_site_tracking(self, example_module):
        n, inputs = training_run_inputs()
        run_both(example_module, [n], inputs, track_sites=False)


class TestWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_train_run_differential(self, name):
        w = get_workload(name)
        module = compile_program(w.source)
        run_both(module, w.train_args, w.train_inputs, track_sites=False)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_ref_run_differential(self, name):
        w = get_workload(name)
        module = compile_program(w.source)
        run_both(module, w.ref_args, w.ref_inputs, profile_mode="both")


class TestTrapEquivalence:
    """Both engines raise the same Trap with the same message."""

    def _trap_both(self, module, args=(), match=""):
        with pytest.raises(Trap, match=match) as ref_exc:
            run_module(module, args, engine="reference")
        with pytest.raises(Trap, match=match) as com_exc:
            run_module(module, args, engine="compiled")
        assert str(ref_exc.value) == str(com_exc.value)

    def test_undefined_variable(self):
        b = IRBuilder("main")
        b.block("entry")
        b.binop("x", "add", "ghost", 1)
        b.ret("x")
        self._trap_both(module_of(b.finish()), match="undefined variable")

    def test_out_of_bounds_load(self):
        b = IRBuilder("main", ["i"])
        b.block("entry")
        b.load("x", "a", "i")
        b.ret("x")
        m = module_of(b.finish(), [ArrayDecl("a", 4)])
        self._trap_both(m, args=[9], match="out of range")

    def test_call_depth_limit(self):
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "main")
        b.ret("r")
        self._trap_both(module_of(b.finish()), match="depth")

    def test_void_result_used(self):
        m = Module()
        b = IRBuilder("noret")
        b.block("entry")
        b.ret()
        m.add_function(b.finish())
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "noret")
        b.ret("r")
        m.add_function(b.finish())
        self._trap_both(m, match="returned no value")

    def test_builtin_arity(self):
        b = IRBuilder("main")
        b.block("entry")
        b.call("r", "abs", 1, 2)
        b.ret("r")
        self._trap_both(module_of(b.finish()), match="expects 1")

    def test_dead_bad_code_does_not_trap(self):
        # A load from an undeclared array in a dead block must not trap at
        # compile time in either engine.
        b = IRBuilder("main")
        b.block("entry")
        b.jump("out")
        b.block("dead")
        b.load("x", "ghost", 0)
        b.jump("out")
        b.block("out")
        b.ret()
        run_both(module_of(b.finish()))

    def test_execution_limit(self):
        b = IRBuilder("main")
        b.block("entry")
        b.jump("spin")
        b.block("spin")
        b.jump("spin")
        m = module_of(b.finish())
        for engine in ("reference", "compiled"):
            with pytest.raises(ExecutionLimit):
                Interpreter(m, max_steps=1000, engine=engine).run()


class TestEngineSelection:
    def test_bad_engine_rejected(self, example_module):
        with pytest.raises(ValueError, match="bad engine"):
            Interpreter(example_module, engine="jit")

    def test_compile_time_surfaced(self, example_module):
        interp = Interpreter(example_module, engine="compiled")
        assert interp.engine_compile_time > 0
        assert Interpreter(example_module).engine_compile_time == 0.0

    def test_repeated_runs_share_numbering(self, example_module):
        interp = Interpreter(example_module, engine="reference")
        n, inputs = training_run_inputs()
        interp.run([n], inputs)
        first = dict(interp._numberings)
        interp.run([n], inputs)
        for name, numbering in interp._numberings.items():
            assert first[name] is numbering


class TestHarnessIntegration:
    def test_workload_run_engines_agree(self):
        from repro.evaluation.harness import WorkloadRun

        w = get_workload("compress95")
        ref = WorkloadRun(w, engine="reference")
        com = WorkloadRun(w, engine="compiled")
        assert ref.train == com.train
        assert ref.ref == com.ref
        assert com.table2() == ref.table2()
        assert set(com.timings) == {"compile", "train_run", "ref_run"}
        assert all(t >= 0 for t in com.timings.values())
        assert com.compile_time == com.timings["compile"]

    def test_workload_run_rejects_bad_engine(self):
        from repro.evaluation.harness import WorkloadRun

        with pytest.raises(ValueError, match="bad engine"):
            WorkloadRun(get_workload("compress95"), engine="jit")
