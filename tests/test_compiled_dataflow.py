"""Differential tests: the bitset-compiled kernel against the generic oracle.

The compiled engine must be a drop-in replacement *per strategy*: for every
separable problem, every graph (plain CFGs, hot-path graphs, tiled
paper-scale graphs), and every worklist strategy, it must produce the same
:class:`Solution` — values and work accounting alike — as the generic
solver running the same strategy.

Same-strategy comparison is the meaningful contract.  The generic solver's
must-problem handling (``ALL`` collapsing to the empty set at a real block)
makes its fixpoint *relax-order dependent* on graphs with mid-graph virtual
vertices — ``test_tiled_views_expose_order_dependence`` pins one such graph
where round-robin and RPO legitimately disagree with each other.  The
kernel replicates each strategy's order exactly, so it lands on the same
fixpoint as its generic twin in every case.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.dataflow import (
    DATAFLOW_ENGINES,
    GraphView,
    engine_scope,
    get_default_engine,
    set_default_engine,
    solve,
)
from repro.dataflow.compiled import AUTO_MIN_VERTICES
from repro.dataflow.framework import SOLVER_STRATEGIES, SolverBudgetExceeded
from repro.dataflow.problems import (
    AvailableExpressions,
    ConstantPropagation,
    CopyPropagation,
    LiveVariables,
    ReachingDefinitions,
    VeryBusyExpressions,
)
from repro.dataflow.tiling import tile_view
from repro.evaluation.harness import WorkloadRun
from repro.ir import IRBuilder
from repro.workloads import WORKLOAD_NAMES, get_workload

from test_solver_properties import random_functions

#: Factories for the five separable problems the kernel compiles.
SEPARABLE = (
    lambda view: ReachingDefinitions(view.params, view.cfg.entry),
    lambda view: LiveVariables(),
    lambda view: AvailableExpressions(),
    lambda view: VeryBusyExpressions(),
    lambda view: CopyPropagation(),
)


def assert_engines_agree(view, *, strategies=SOLVER_STRATEGIES, stats=True):
    """Compiled must equal generic per strategy: values, and optionally the
    full work accounting (everything but the engine tag)."""
    for make in SEPARABLE:
        for strategy in strategies:
            g = solve(
                make(view), view, engine="generic", strategy=strategy,
                collect_stats=stats,
            )
            c = solve(
                make(view), view, engine="compiled", strategy=strategy,
                collect_stats=stats,
            )
            assert c.value_in == g.value_in, (make(view), strategy)
            assert c.value_out == g.value_out, (make(view), strategy)
            if stats:
                assert g.stats.engine == "generic"
                assert c.stats.engine == "compiled"
                for field in ("visits", "visits_by_vertex", "peak_worklist",
                              "pushes", "strategy"):
                    assert getattr(c.stats, field) == getattr(g.stats, field), (
                        make(view), strategy, field,
                    )


def _workload_views(name, ca=0.97, cr=0.95):
    """(cfg views, hpg views) of one workload at the given coverage."""
    run = WorkloadRun(get_workload(name))
    cfg_views = [
        GraphView.from_function(fn) for fn in run.module.functions.values()
    ]
    hpg_views = [
        qa.hpg.view()
        for qa in run.qualified(ca, cr).values()
        if qa.hpg is not None
    ]
    return cfg_views, hpg_views


# -- differential equivalence -------------------------------------------------


def test_engines_agree_on_running_example(example_module):
    for fn in example_module.functions.values():
        assert_engines_agree(GraphView.from_function(fn))


def test_engines_agree_on_compress95_cfg_and_hpg():
    cfg_views, hpg_views = _workload_views("compress95")
    assert hpg_views, "compress95 must trace at CA=0.97"
    for view in cfg_views + hpg_views:
        assert_engines_agree(view)


def test_engines_agree_on_qualified_example_hpg(example_qualified):
    assert_engines_agree(example_qualified.hpg.view())
    assert example_qualified.reduced is not None
    assert_engines_agree(example_qualified.reduced.view())


@pytest.mark.slow
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_engines_agree_on_every_workload(name):
    cfg_views, hpg_views = _workload_views(name)
    for view in cfg_views + hpg_views:
        assert_engines_agree(view, stats=False)


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fn=random_functions())
def test_engines_agree_on_random_functions(fn):
    assert_engines_agree(GraphView.from_function(fn))


# -- tiled paper-scale graphs -------------------------------------------------


def test_engines_agree_on_tiled_views(example_module):
    view = GraphView.from_function(example_module.function("work"))
    assert_engines_agree(tile_view(view, 5))


def test_tiled_views_expose_order_dependence():
    """On graphs with mid-graph virtual vertices the *generic* solver's
    must-problem fixpoint depends on the relax order (the documented ALL
    collapse); the kernel must match its generic twin on both sides of the
    disagreement."""
    li95 = get_workload("li95")
    run = WorkloadRun(li95)
    fn = next(iter(run.module.functions.values()))
    view = tile_view(GraphView.from_function(fn), 3)

    rr = solve(AvailableExpressions(), view, engine="generic",
               strategy="round_robin")
    rpo = solve(AvailableExpressions(), view, engine="generic", strategy="rpo")
    assert rr.value_out != rpo.value_out  # the order dependence itself
    assert_engines_agree(view, stats=False)


# -- edge cases ---------------------------------------------------------------


def _self_loop_view():
    """A start vertex with a back edge (the hot-path-graph shape)."""
    from repro.ir.cfg import EXIT, Cfg

    b = IRBuilder("f", ["p"])
    b.block("loop")
    b.assign("x", 1)
    b.jump("loop")
    fn = b.finish()

    cfg = Cfg(entry="loop")
    cfg.add_vertex("loop")
    cfg.add_vertex(EXIT)
    cfg.add_edge("loop", "loop")
    cfg.add_edge("loop", EXIT)
    return fn, GraphView(cfg, fn.params, {"loop": fn.blocks["loop"]})


def test_entry_vertex_with_back_edge():
    fn, view = _self_loop_view()
    assert_engines_agree(view)
    sol = solve(
        ReachingDefinitions(fn.params, "loop"), view, engine="compiled"
    )
    assert ("loop", -1, "p") in sol.value_in["loop"]
    assert ("loop", 0, "x") in sol.value_in["loop"]


def test_unreachable_real_block_decodes_to_top():
    """A real block unreachable in the analysis direction stays at top
    (``ALL`` for must problems) in both engines."""
    b = IRBuilder("f", [])
    b.block("entry")
    b.binop("x", "add", "a", "b")
    b.ret("x")
    b.block("orphan")
    b.binop("y", "mul", "a", "b")
    b.ret("y")
    fn = b.finish()
    view = GraphView.from_function(fn)
    assert not view.cfg.preds("orphan")
    assert_engines_agree(view)
    from repro.dataflow.problems import ALL

    sol = solve(AvailableExpressions(), view, engine="compiled")
    assert sol.value_in["orphan"] is ALL


def test_empty_blocks_and_budget():
    b = IRBuilder("f", ["p"])
    b.block("entry")
    b.jump("entry")
    fn = b.finish()
    view = GraphView.from_function(fn)
    assert_engines_agree(view)
    with pytest.raises(SolverBudgetExceeded):
        solve(
            LiveVariables(), view, engine="compiled", max_visits=0
        )


# -- engine selection ---------------------------------------------------------


def test_auto_compiles_separable_problems_on_large_graphs(example_module):
    view = GraphView.from_function(example_module.function("work"))
    big = tile_view(view, 3)
    assert big.cfg.num_vertices >= AUTO_MIN_VERTICES
    sol = solve(LiveVariables(), big, collect_stats=True)
    assert sol.stats.engine == "compiled"


def test_auto_prefers_generic_on_small_graphs(example_module):
    """Below the crossover the kernel's fixed costs lose to the generic
    solver (BENCH_dataflow measured 0.83-0.89x), so auto must not compile."""
    view = GraphView.from_function(example_module.function("work"))
    assert view.cfg.num_vertices < AUTO_MIN_VERTICES
    sol = solve(LiveVariables(), view, collect_stats=True)
    assert sol.stats.engine == "generic"
    # An explicit engine request still forces the kernel at any size.
    sol = solve(LiveVariables(), view, engine="compiled", collect_stats=True)
    assert sol.stats.engine == "compiled"


def test_auto_crossover_boundary():
    """Pin the selection boundary itself: auto flips from generic to
    compiled exactly at AUTO_MIN_VERTICES real vertices."""
    assert AUTO_MIN_VERTICES == 12

    def chain_view(num_blocks):
        b = IRBuilder("f", ["p"])
        for i in range(num_blocks):
            b.block(f"b{i}")
            b.assign(f"x{i}", i)
            if i + 1 < num_blocks:
                b.jump(f"b{i + 1}")
            else:
                b.ret(f"x{i}")
        return GraphView.from_function(b.finish())

    # A chain of n blocks has n + 2 vertices (virtual entry and exit).
    below = chain_view(AUTO_MIN_VERTICES - 3)
    at = chain_view(AUTO_MIN_VERTICES - 2)
    assert below.cfg.num_vertices == AUTO_MIN_VERTICES - 1
    assert at.cfg.num_vertices == AUTO_MIN_VERTICES
    assert (
        solve(LiveVariables(), below, collect_stats=True).stats.engine
        == "generic"
    )
    assert (
        solve(LiveVariables(), at, collect_stats=True).stats.engine
        == "compiled"
    )


def test_auto_falls_back_for_non_separable(example_module):
    view = GraphView.from_function(example_module.function("work"))
    sol = solve(ConstantPropagation(view.params), view, collect_stats=True)
    assert sol.stats.engine == "generic"


def test_compiled_demands_a_lowering(example_module):
    view = GraphView.from_function(example_module.function("work"))
    with pytest.raises(ValueError, match="cannot run on the compiled engine"):
        solve(ConstantPropagation(view.params), view, engine="compiled")


def test_bad_engine_rejected(example_module):
    view = GraphView.from_function(example_module.function("work"))
    with pytest.raises(ValueError, match="bad dataflow engine"):
        solve(LiveVariables(), view, engine="simd")
    with pytest.raises(ValueError, match="bad dataflow engine"):
        set_default_engine("simd")


def test_default_engine_scope(example_module):
    view = GraphView.from_function(example_module.function("work"))
    assert get_default_engine() == "auto"
    assert set(DATAFLOW_ENGINES) == {"auto", "generic", "compiled"}
    with engine_scope("generic"):
        assert get_default_engine() == "generic"
        sol = solve(LiveVariables(), view, collect_stats=True)
        assert sol.stats.engine == "generic"
        # An explicit argument still beats the scoped default.
        sol = solve(LiveVariables(), view, engine="compiled", collect_stats=True)
        assert sol.stats.engine == "compiled"
    assert get_default_engine() == "auto"


def test_set_default_engine_returns_previous():
    prev = set_default_engine("generic")
    try:
        assert prev == "auto"
        assert get_default_engine() == "generic"
    finally:
        set_default_engine(prev)
