"""Reduction tests (§5): hot-vertex selection, compatibility, refinement,
collapse, and the preservation guarantees."""

import pytest

from repro.core import (
    reduce_hpg,
    reduce_profile,
    run_qualified,
    select_hot_vertices,
)
from repro.core.reduction import nonlocal_constant_sites, vertex_weights
from repro.dataflow import analyze


class TestHotVertexSelection:
    def test_zero_cr_selects_nothing(self):
        assert select_hot_vertices({("a", 0): 10}, 0.0) == ()

    def test_full_cr_selects_all_weighted(self):
        weights = {("a", 0): 10, ("b", 0): 5, ("c", 0): 0}
        hot = select_hot_vertices(weights, 1.0)
        assert set(hot) == {("a", 0), ("b", 0)}

    def test_descending_order(self):
        weights = {("a", 0): 1, ("b", 0): 100, ("c", 0): 10}
        hot = select_hot_vertices(weights, 1.0)
        assert hot == (("b", 0), ("c", 0), ("a", 0))

    def test_partial_cutoff(self):
        weights = {("a", 0): 90, ("b", 0): 9, ("c", 0): 1}
        assert select_hot_vertices(weights, 0.9) == (("a", 0),)

    def test_bad_cr_rejected(self):
        with pytest.raises(ValueError):
            select_hot_vertices({}, 1.5)

    def test_all_zero_weights(self):
        assert select_hot_vertices({("a", 0): 0}, 0.95) == ()


class TestReductionOnRunningExample:
    def test_weights_match_the_papers_narration(self, example_qualified):
        """The paper's §5: H12 weighs 30, H13 ~100, H14 140, H15 60, I17 70
        (our H13 weighs 105 because the narration rounds; see the workload
        docstring)."""
        qa = example_qualified
        weights = qa.reduction.weights
        h_weights = sorted(
            w for v, w in weights.items() if v[0] == "H" and w > 0
        )
        assert h_weights == [30, 60, 105, 140]
        i_weights = [w for v, w in weights.items() if v[0] == "I" and w > 0]
        assert i_weights == [70]

    def test_hot_vertices_preserve_their_constants(self, example_qualified):
        """Every constant at a hot traced vertex survives into the reduced
        graph at its representative."""
        qa = example_qualified
        reduction = qa.reduction
        reduced = reduction.reduced
        for hot in reduction.hot_vertices:
            rep = reduced.representative_of[hot]
            before = qa.hpg_analysis.pure_constant_sites(hot)
            after = qa.reduced_analysis.pure_constant_sites(rep)
            for idx, value in before.items():
                assert after.get(idx) == value, (hot, idx)

    def test_reduced_no_larger_than_hpg(self, example_qualified):
        qa = example_qualified
        assert qa.reduced_size <= qa.hpg_size
        assert qa.reduced_size >= qa.original_size

    def test_classes_partition_hpg_vertices(self, example_qualified):
        qa = example_qualified
        members = [v for block in qa.reduction.refined for v in block]
        assert sorted(map(repr, members)) == sorted(
            map(repr, qa.hpg.cfg.vertices)
        )

    def test_classes_are_per_original_vertex(self, example_qualified):
        for block in example_qualified.reduction.refined:
            assert len({v[0] for v in block}) == 1

    def test_quotient_closed_under_labels(self, example_qualified):
        qa = example_qualified
        rep = qa.reduction.reduced.representative_of
        for block in qa.reduction.refined:
            for label in {s[0] for m in block for s in qa.hpg.cfg.succs(m)}:
                targets = set()
                for member in block:
                    for succ in qa.hpg.cfg.succs(member):
                        if succ[0] == label:
                            targets.add(rep[succ])
                assert len(targets) == 1

    def test_refinement_only_splits_compatibility(self, example_qualified):
        qa = example_qualified
        compat_class_of = {}
        for i, block in enumerate(qa.reduction.compatibility):
            for v in block:
                compat_class_of[v] = i
        for block in qa.reduction.refined:
            assert len({compat_class_of[v] for v in block}) == 1

    def test_recording_edges_well_defined(self, example_qualified):
        """An edge between representatives is recording iff its original
        edge is — consistent across all member edges."""
        qa = example_qualified
        reduced = qa.reduction.reduced
        for (u, v) in reduced.cfg.edges:
            original = (u[0], v[0])
            assert ((u, v) in reduced.recording) == (
                original in qa.recording
            )

    def test_reduced_profile_preserves_weight(self, example_qualified):
        qa = example_qualified
        assert qa.reduced_profile.total_count == qa.hpg_profile.total_count
        hpg_sizes = {
            v: qa.block_sizes.get(v[0], 0) for v in qa.hpg.cfg.vertices
        }
        red_sizes = {
            v: qa.block_sizes.get(v[0], 0)
            for v in qa.reduction.reduced.cfg.vertices
        }
        assert qa.reduced_profile.total_instructions(red_sizes) == (
            qa.hpg_profile.total_instructions(hpg_sizes)
        )

    def test_lower_cr_merges_more(self, example_module, example_profile):
        """With a lower benefit cutoff, fewer vertices are hot and more
        duplicates merge — the paper's example keeps only H13/H14 hot."""
        fn = example_module.function("work")
        full = run_qualified(fn, example_profile, ca=1.0, cr=0.95)
        low = run_qualified(fn, example_profile, ca=1.0, cr=0.6)
        assert len(low.reduction.hot_vertices) < len(
            full.reduction.hot_vertices
        )
        assert low.reduced_size <= full.reduced_size

    def test_recording_edges_acyclify_reduced_graph(self, example_qualified):
        reduced = example_qualified.reduction.reduced
        assert reduced.cfg.is_acyclic_without(reduced.recording)

    def test_nonlocal_sites_exclude_local(self, example_qualified):
        qa = example_qualified
        for vertex in qa.hpg.cfg.vertices:
            if vertex[0] != "H":
                continue
            sites = nonlocal_constant_sites(qa.hpg_analysis, vertex)
            # The store (index 1) and load (index 3) can never be constant;
            # the locally-constant assignments don't appear either.
            assert all(idx in (0, 2) for idx in sites)

    def test_vertex_weights_zero_without_profile(self, example_qualified):
        from repro.profiles import PathProfile

        qa = example_qualified
        weights = vertex_weights(qa.hpg, qa.hpg_analysis, PathProfile())
        assert all(w == 0 for w in weights.values())


class TestReductionEffectiveness:
    def test_reduction_shrinks_vortex(self, vortex_run):
        """On a real workload the reduced graph is strictly smaller than the
        hot-path graph (the paper: an order of magnitude less growth)."""
        orig, hpg, red = vortex_run.graph_sizes(0.97)
        assert orig < red < hpg
