"""Tests for the profile-qualified analyzer (``repro lint``).

Covers the reporter stack (SARIF 2.1.0 shape, rule registry, JSON payload),
the content-addressed baseline (fingerprint stability, new-finding-only
failure), ranking and the mass threshold, the paper-acceptance sharpening
provenance on the running example, and daemon-vs-CLI parity for
``/v1/lint``.
"""

from __future__ import annotations

import json

import pytest

from repro.analyze import (
    Baseline,
    baseline_of,
    compute_findings,
    finding_fingerprint,
    lint_program,
    partition,
    rank,
    to_json_payload,
    to_sarif,
)
from repro.analyze.passes import (
    LINT_HOT_CONSTANT_SITE,
    PATH_LINT_CODES,
)
from repro.analyze.report import RULES, SARIF_VERSION, render_text
from repro.checks.diagnostics import Diagnostic, PathEvidence, Severity
from repro.cli import main
from repro.workloads.running_example import training_run_inputs

# ---------------------------------------------------------------------------
# shared fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def example_findings(example_module):
    """Ranked findings over the running example (the Figure 5 program)."""
    n, inputs = training_run_inputs()
    return lint_program(example_module, [n], inputs, 0.97, 0.95)


@pytest.fixture(scope="module")
def example_pairs(example_findings):
    return [("running_example", d) for d in example_findings]


#: A MiniC program with one hot-path-constant branch (flag is ~90% zero,
#: so `c` is 1 on the dominant path but merges to non-constant on the CFG).
LINTY_SOURCE = """
global flag[32];

func main(n) {
  var i = 0;
  var s = 0;
  while (i < n) {
    var c = 1;
    if (flag[i]) { c = 0; }
    if (c) { s = s + 2; } else { s = s + 1; }
    i = i + 1;
  }
  return s;
}
"""

#: The same program with a second, identically shaped defect appended —
#: the "new finding" of the baseline-gate tests.
LINTY_SOURCE_V2 = LINTY_SOURCE.replace(
    "    i = i + 1;",
    """    var d = 1;
    if (flag[i]) { d = 0; }
    if (d) { s = s + 3; } else { s = s + 4; }
    i = i + 1;
""",
)

LINT_N = 20
LINT_FLAG = ",".join("1" if i % 10 == 9 else "0" for i in range(LINT_N))


def _write_prog(tmp_path, source):
    prog = tmp_path / "prog.mc"
    prog.write_text(source)
    return prog


def _lint_cli(prog, *extra):
    return main(
        [
            "lint",
            str(prog),
            "--args",
            str(LINT_N),
            "--input",
            f"flag={LINT_FLAG}",
            *extra,
        ]
    )


# ---------------------------------------------------------------------------
# ranking and the mass threshold
# ---------------------------------------------------------------------------


def _finding(code, mass, message="m", block="B"):
    evidence = None
    if mass is not None:
        evidence = PathEvidence(
            mass=mass,
            hot_paths=(0,),
            supporting=1,
            duplicates=2,
            iterative="i",
            qualified="q",
            sharper=True,
        )
    return Diagnostic(
        code=code,
        severity=Severity.WARNING,
        message=message,
        function="f",
        block=block,
        path_evidence=evidence,
    )


class TestRanking:
    def test_mass_descending_then_stable(self):
        low = _finding("LINT006", 0.2)
        high = _finding("LINT006", 0.9)
        unranked = _finding("LINT002", None)
        assert rank([unranked, low, high]) == (high, low, unranked)

    def test_ties_break_deterministically(self):
        a = _finding("LINT006", 0.5, block="A")
        b = _finding("LINT006", 0.5, block="B")
        assert rank([b, a]) == rank([a, b]) == (a, b)

    def test_min_mass_filters_path_findings(self, example_module):
        n, inputs = training_run_inputs()
        low = lint_program(
            example_module, [n], inputs, 0.97, 0.95, min_mass=0.0
        )
        high = lint_program(
            example_module, [n], inputs, 0.97, 0.95, min_mass=0.99
        )
        assert set(high) <= set(low)
        for d in high:
            if d.code in PATH_LINT_CODES:
                assert d.mass is not None and d.mass >= 0.99

    def test_findings_are_ranked(self, example_findings):
        masses = [d.mass for d in example_findings if d.mass is not None]
        assert masses == sorted(masses, reverse=True)


# ---------------------------------------------------------------------------
# the acceptance criterion: qualified-sharper-than-iterative provenance
# ---------------------------------------------------------------------------


class TestSharpeningProvenance:
    def test_running_example_lint010(self, example_findings):
        sites = [
            d for d in example_findings if d.code == LINT_HOT_CONSTANT_SITE
        ]
        assert sites, "the Figure 5 constants must surface as LINT010"
        for d in sites:
            ev = d.path_evidence
            assert ev is not None
            assert ev.sharper
            assert ev.mass > 0
            assert ev.hot_paths
            # The provenance names both solutions and they must disagree —
            # that is what "sharper than iterative" means.
            assert ev.iterative != ev.qualified

    def test_figure5_site_is_top_ranked(self, example_findings):
        # x = a + b in H carries 100% of H's mass: it must rank first.
        top = example_findings[0]
        assert top.code == LINT_HOT_CONSTANT_SITE
        assert top.function == "work"
        assert top.mass == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# SARIF 2.1.0
# ---------------------------------------------------------------------------


class TestSarif:
    def test_rule_registry_is_complete_and_stable(self):
        ids = [rule["id"] for rule in RULES]
        assert ids == [f"LINT{i:03d}" for i in range(1, 11)]
        for rule in RULES:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "warning",
                "note",
            )

    def test_schema_shape(self, example_pairs):
        log = to_sarif(example_pairs)
        assert log["$schema"].endswith("sarif-2.1.0.json")
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["tool"]["driver"]["rules"] == list(RULES)
        assert len(run["results"]) == len(example_pairs)
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            logical = result["locations"][0]["logicalLocations"][0]
            assert logical["fullyQualifiedName"].startswith(
                "running_example::"
            )
            assert result["partialFingerprints"]["reproLint/v1"]
            assert result["properties"]["target"] == "running_example"

    def test_json_round_trip(self, example_pairs):
        log = to_sarif(example_pairs)
        assert json.loads(json.dumps(log)) == log

    def test_baselined_findings_are_suppressed_not_dropped(
        self, example_pairs
    ):
        baseline = baseline_of(example_pairs, "accepted")
        log = to_sarif(example_pairs, baseline)
        results = log["runs"][0]["results"]
        assert len(results) == len(example_pairs)
        for result in results:
            (suppression,) = result["suppressions"]
            assert suppression["kind"] == "external"
            assert suppression["justification"] == "accepted"

    def test_evidence_rides_in_properties(self, example_pairs):
        log = to_sarif(example_pairs)
        evidenced = [
            r
            for r in log["runs"][0]["results"]
            if "pathEvidence" in r["properties"]
        ]
        assert evidenced
        ev = evidenced[0]["properties"]["pathEvidence"]
        assert set(ev) >= {"mass", "hot_paths", "iterative", "qualified"}


# ---------------------------------------------------------------------------
# baseline suppression
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_fingerprints_stable_across_runs(self, example_module):
        n, inputs = training_run_inputs()
        first = lint_program(example_module, [n], inputs, 0.97, 0.95)
        second = lint_program(example_module, [n], inputs, 0.97, 0.95)
        assert [
            finding_fingerprint("t", d) for d in first
        ] == [finding_fingerprint("t", d) for d in second]

    def test_fingerprint_depends_on_target_and_location(
        self, example_findings
    ):
        d = example_findings[0]
        assert finding_fingerprint("a", d) != finding_fingerprint("b", d)

    def test_partition_semantics(self, example_pairs):
        # No baseline: everything is new.
        new, suppressed = partition(example_pairs, None)
        assert new == list(example_pairs) and not suppressed
        # Full baseline: everything suppressed.
        new, suppressed = partition(
            example_pairs, baseline_of(example_pairs, "ok")
        )
        assert not new and len(suppressed) == len(example_pairs)
        # Partial baseline: exactly the unbaselined rest is new.
        head = example_pairs[:1]
        new, suppressed = partition(example_pairs, baseline_of(head, "ok"))
        assert suppressed == head
        assert new == example_pairs[1:]

    def test_save_load_round_trip(self, tmp_path, example_pairs):
        baseline = baseline_of(example_pairs, "known-good")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(baseline)
        for target, d in example_pairs:
            fp = finding_fingerprint(target, d)
            assert fp in loaded
            assert loaded.justification(fp) == "known-good"

    def test_render_text_marks_baselined(self, example_pairs):
        text = render_text(example_pairs, baseline_of(example_pairs, "ok"))
        assert "[baselined]" in text
        assert f"{len(example_pairs)} finding(s): 0 new" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_json_payload(self, tmp_path, capsys):
        prog = _write_prog(tmp_path, LINTY_SOURCE)
        assert _lint_cli(prog, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"findings", "counts", "new", "suppressed"}
        codes = {f["code"] for f in payload["findings"]}
        assert "LINT006" in codes
        assert payload["suppressed"] == 0
        assert payload["new"] == len(payload["findings"])

    def test_sarif_file(self, tmp_path, capsys):
        prog = _write_prog(tmp_path, LINTY_SOURCE)
        sarif = tmp_path / "out.sarif"
        assert _lint_cli(prog, "--sarif", str(sarif)) == 0
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_fail_on_new_gates_only_new_findings(self, tmp_path, capsys):
        prog = _write_prog(tmp_path, LINTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        # Before a baseline exists, every finding is new: the gate fails.
        assert (
            _lint_cli(prog, "--baseline", str(baseline), "--fail-on-new")
            == 1
        )
        # Record the baseline; the same findings now pass the gate.
        assert (
            _lint_cli(
                prog, "--baseline", str(baseline), "--update-baseline"
            )
            == 0
        )
        assert (
            _lint_cli(prog, "--baseline", str(baseline), "--fail-on-new")
            == 0
        )
        # Introduce one fresh defect: only it is new, and it fails the gate.
        prog.write_text(LINTY_SOURCE_V2)
        assert (
            _lint_cli(prog, "--baseline", str(baseline), "--fail-on-new")
            == 1
        )
        capsys.readouterr()
        assert _lint_cli(prog, "--baseline", str(baseline), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suppressed"] > 0, "old findings stay baselined"
        assert payload["new"] > 0, "the seeded defect is new"

    def test_update_preserves_justifications(self, tmp_path, capsys):
        prog = _write_prog(tmp_path, LINTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert (
            _lint_cli(
                prog,
                "--baseline",
                str(baseline),
                "--update-baseline",
                "--justification",
                "first pass",
            )
            == 0
        )
        assert (
            _lint_cli(
                prog, "--baseline", str(baseline), "--update-baseline"
            )
            == 0
        )
        capsys.readouterr()
        loaded = Baseline.load(baseline)
        assert len(loaded) > 0
        data = json.loads(baseline.read_text())
        assert all(
            entry["justification"] == "first pass"
            for entry in data["findings"].values()
        )

    @pytest.mark.slow
    def test_jobs_do_not_change_output(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "lint",
            "sieve",
            "gen-small",
            "--cache-dir",
            cache,
            "--min-mass",
            "0",
            "--json",
        ]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel
        # Target order is canonical: all sieve findings precede gen-small's.
        targets = [f["target"] for f in serial["findings"]]
        assert targets == sorted(targets, key=("sieve", "gen-small").index)


# ---------------------------------------------------------------------------
# service parity (/v1/lint)
# ---------------------------------------------------------------------------


class TestLintService:
    def _inline_request(self):
        from repro.service import LintRequest

        flag = [1 if i % 10 == 9 else 0 for i in range(LINT_N)]
        return LintRequest(
            source=LINTY_SOURCE,
            name="linty",
            args=(LINT_N,),
            inputs={"flag": flag},
        )

    def test_direct_equals_daemon(self):
        from repro.service import (
            AnalysisService,
            comparable_payload,
            execute_lint,
        )

        direct = execute_lint(self._inline_request())
        service = AnalysisService(jobs=1)
        try:
            job, _ = service.submit(self._inline_request())
            service.wait(job, timeout=120)
        finally:
            service.shutdown()
        assert job.state == "done", job.error
        assert comparable_payload(job.result) == comparable_payload(direct)
        assert direct["kind"] == "lint"
        assert direct["findings"]
        codes = {f["code"] for f in direct["findings"]}
        assert "LINT006" in codes

    def test_identical_submissions_coalesce(self):
        from repro.service import AnalysisService

        service = AnalysisService(jobs=1)
        try:
            first, coalesced_first = service.submit(self._inline_request())
            second, coalesced_second = service.submit(
                self._inline_request()
            )
            service.wait(first, timeout=120)
        finally:
            service.shutdown()
        assert not coalesced_first
        # The identical request either coalesced onto the live job or, if
        # the first had already finished, got a fresh one — both are
        # correct; same-job implies the coalesced flag.
        if second is first:
            assert coalesced_second

    @pytest.mark.slow
    def test_http_round_trip(self):
        import threading

        from repro.service import (
            AnalysisService,
            ServiceClient,
            comparable_payload,
            execute_lint,
            make_server,
        )

        service = AnalysisService(jobs=1)
        server = make_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            payload = client.lint(self._inline_request())
            direct = execute_lint(self._inline_request())
            assert comparable_payload(payload) == comparable_payload(
                direct
            )
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown()
            thread.join(timeout=5)

    def test_bad_request_is_rejected(self):
        from repro.service import LintRequest

        with pytest.raises(ValueError):
            LintRequest(target="sieve", min_mass=2.0)
        with pytest.raises(ValueError):
            LintRequest.from_dict({"target": "sieve", "mystery": 1})
        with pytest.raises(ValueError):
            LintRequest.from_dict({})  # neither target nor source


# ---------------------------------------------------------------------------
# determinism across the compute layers
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_compute_findings_is_pure(self, example_module):
        from repro.core import run_qualified
        from repro.interp import Interpreter

        n, inputs = training_run_inputs()
        result = Interpreter(
            example_module, profile_mode="bl", track_sites=False
        ).run([n], inputs)
        qualified = {
            name: run_qualified(fn, result.profiles[name], 0.97, 0.95)
            for name, fn in example_module.functions.items()
        }
        first = compute_findings(example_module, qualified)
        second = compute_findings(example_module, qualified)
        assert first == second

    def test_cli_matches_library(self, example_findings, capsys):
        assert main(["lint", "running_example", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = to_json_payload(
            [("running_example", d) for d in example_findings]
        )
        assert payload == expected
