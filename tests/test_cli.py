"""CLI tests: each subcommand invoked through main()."""

import json

import pytest

from repro.cli import main
from repro.frontend import compile_program
from repro.interp import run_module
from repro.ir import parse_module

SOURCE = """
global data[8];

func kernel(n) {
  var i = 0;
  var acc = 0;
  while (i < n) {
    var step; var bonus;
    if (data[i] > 0) { step = 1; bonus = 3; }
    else             { step = 2; bonus = 7; }
    acc = acc + bonus * 4 + step;
    i = i + step;
  }
  print(acc);
  return acc;
}

func main(n) { return kernel(n); }
"""


@pytest.fixture()
def prog(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return path


class TestCompile:
    def test_compile_to_stdout(self, prog, capsys):
        assert main(["compile", str(prog)]) == 0
        out = capsys.readouterr().out
        module = parse_module(out)
        assert set(module.functions) == {"kernel", "main"}

    def test_compile_to_file(self, prog, tmp_path):
        out = tmp_path / "prog.ir"
        assert main(["compile", str(prog), "-o", str(out)]) == 0
        module = parse_module(out.read_text())
        assert "data" in module.arrays


class TestRun:
    def test_run_prints_output(self, prog, capsys):
        rc = main(
            ["run", str(prog), "--args", "6", "--input", "data=1,1,0,1,0,1"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.strip().isdigit()
        assert "# cost (cycles):" in captured.err

    def test_run_saves_profile(self, prog, tmp_path, capsys):
        profile_file = tmp_path / "prog.prof"
        main(
            [
                "run",
                str(prog),
                "--args",
                "6",
                "--input",
                "data=1,1,0,1,0,1",
                "--save-profile",
                str(profile_file),
            ]
        )
        text = profile_file.read_text()
        assert text.startswith("# repro path profile v1")
        assert "routine kernel" in text

    def test_bad_input_spec(self, prog):
        with pytest.raises(SystemExit):
            main(["run", str(prog), "--input", "data"])


class TestOptimize:
    def test_end_to_end(self, prog, tmp_path, capsys):
        profile_file = tmp_path / "prog.prof"
        main(
            [
                "run",
                str(prog),
                "--args",
                "8",
                "--input",
                "data=1,1,1,0,1,1,0,1",
                "--save-profile",
                str(profile_file),
            ]
        )
        baseline_out = capsys.readouterr().out
        out_file = tmp_path / "opt.ir"
        rc = main(
            [
                "optimize",
                str(prog),
                "--profile",
                str(profile_file),
                "-o",
                str(out_file),
            ]
        )
        assert rc == 0
        optimized = parse_module(out_file.read_text())
        # The optimized module still behaves identically.
        result = run_module(
            optimized,
            args=[8],
            inputs={"data": [1, 1, 1, 0, 1, 1, 0, 1]},
            profile_mode=None,
        )
        assert "\n".join(
            " ".join(map(str, t)) for t in result.output
        ) == baseline_out.strip()
        # Duplication happened: kernel gained blocks.
        original = compile_program(SOURCE)
        assert len(optimized.functions["kernel"].blocks) >= len(
            original.functions["kernel"].blocks
        )


class TestDot:
    def test_plain_cfg_dot(self, prog, capsys):
        assert main(["dot", str(prog), "--function", "kernel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph kernel {")

    def test_traced_dot_with_profile(self, prog, tmp_path, capsys):
        profile_file = tmp_path / "prog.prof"
        main(
            [
                "run",
                str(prog),
                "--args",
                "8",
                "--input",
                "data=1,1,1,0,1,1,0,1",
                "--save-profile",
                str(profile_file),
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "dot",
                str(prog),
                "--function",
                "kernel",
                "--profile",
                str(profile_file),
                "--ca",
                "1.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "@q" in out  # duplicated vertices present

    def test_unknown_function(self, prog):
        with pytest.raises(SystemExit):
            main(["dot", str(prog), "--function", "ghost"])


class TestReport:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["report", "gcc95"])

    def test_report_runs(self, capsys):
        assert main(["report", "compress95"]) == 0
        out = capsys.readouterr().out
        assert "qualified non-local constants" in out
        assert "speedup" in out


class TestBench:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["bench", "--workloads", "gcc95"])

    def test_bench_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        rc = main(
            [
                "bench",
                "--workloads",
                "compress95",
                "--ca",
                "0.0",
                "0.97",
                "--jobs",
                "1",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(out_dir),
            ]
        )
        assert rc == 0
        written = {p.name for p in out_dir.iterdir()}
        assert written == {"fig9.txt", "fig11.txt", "table1.txt", "table2.txt"}
        err = capsys.readouterr().err
        assert "# cache activity" in err

    def test_bench_prints_to_stdout(self, capsys):
        rc = main(
            ["bench", "--workloads", "compress95", "--ca", "0.97", "--jobs", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "compress95" in out

    def test_bench_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        rc = main(
            [
                "bench",
                "--workloads",
                "compress95",
                "--ca",
                "0.97",
                "--jobs",
                "1",
                "--trace-out",
                str(trace),
            ]
        )
        assert rc == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records if r["type"] == "span"}
        assert "driver.sweep" in names and "workload.compile" in names


class TestTrace:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["trace", "gcc95"])

    def test_requires_workload_or_self_check(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_trace_prints_tree_and_metrics(self, capsys):
        assert main(["trace", "compress95"]) == 0
        out = capsys.readouterr().out
        assert "== trace ==" in out
        assert "- workload.compile" in out
        assert "- workload.qualify" in out
        assert "slowest spans:" in out
        assert "== metrics ==" in out
        assert "interp_instructions" in out

    def test_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(["trace", "compress95", "--trace-out", str(trace)])
        assert rc == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert records, "trace file is empty"
        types = {r["type"] for r in records}
        assert types >= {"span", "counter"}

    def test_self_check(self, capsys):
        assert main(["trace", "--self-check"]) == 0
        err = capsys.readouterr().err
        assert "self-check OK" in err

    def test_run_trace_out(self, prog, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        rc = main(
            ["run", str(prog), "--args", "6", "--trace-out", str(trace)]
        )
        assert rc == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records if r["type"] == "span"}
        assert "interp.run" in names

    def test_report_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "report.jsonl"
        rc = main(["report", "compress95", "--trace-out", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage spans:" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"workload.compile", "workload.qualify"} <= names


class TestCheck:
    def test_self_check(self, capsys):
        assert main(["check", "--self-check"]) == 0
        err = capsys.readouterr().err
        assert "# self-check OK" in err

    def test_requires_target_or_self_check(self):
        with pytest.raises(SystemExit):
            main(["check"])

    def test_running_example_clean(self, capsys):
        assert main(["check", "running_example"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_workload_clean(self, capsys):
        assert main(["check", "compress95"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_program_file(self, prog, capsys):
        rc = main(
            ["check", str(prog), "--args", "6", "--input", "data=1,1,0,1,0,1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, prog, capsys):
        rc = main(
            [
                "check",
                str(prog),
                "--args",
                "6",
                "--input",
                "data=1,1,0,1,0,1",
                "--json",
            ]
        )
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert set(parsed) == {"diagnostics", "counts", "timings"}
        # The timings map aggregates spans by name; the checker's own
        # passes appear as check.<name> entries among the pipeline spans.
        assert any(name.startswith("check.") for name in parsed["timings"])
        assert all(d >= 0.0 for d in parsed["timings"].values())

    def test_fail_on_warning(self, capsys):
        # compress95 carries known dead-store lint warnings, so promoting
        # warnings to failures must flip the exit code to 1.
        assert main(["check", "compress95"]) == 0
        capsys.readouterr()
        assert main(["check", "compress95", "--fail-on", "warning"]) == 1

    def test_run_with_check_flag(self, prog, capsys):
        rc = main(
            [
                "run",
                str(prog),
                "--args",
                "6",
                "--input",
                "data=1,1,0,1,0,1",
                "--check",
            ]
        )
        assert rc == 0
        assert "# checks:" in capsys.readouterr().err

    def test_report_with_check_flag(self, capsys):
        assert main(["report", "compress95", "--check"]) == 0
        assert "# checks:" in capsys.readouterr().err

    def test_bench_with_check_flag(self, capsys):
        rc = main(
            [
                "bench",
                "--workloads",
                "compress95",
                "--ca",
                "0.97",
                "--jobs",
                "1",
                "--check",
            ]
        )
        assert rc == 0
        assert "# checks" in capsys.readouterr().err


class TestDataflowEngineFlag:
    """``--dataflow-engine`` and ``--mem-spans`` plumbing."""

    def test_report_shows_engine_row(self, capsys):
        assert main(
            ["report", "compress95", "--dataflow-engine", "generic"]
        ) == 0
        out = capsys.readouterr().out
        assert "dataflow engine" in out
        assert "generic" in out

    def test_trace_engine_choices_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "compress95", "--dataflow-engine", "simd"])

    def test_check_runs_clean_on_both_engines(self, capsys):
        for engine in ("compiled", "generic"):
            assert main(
                ["check", "compress95", "--dataflow-engine", engine]
            ) == 0
            assert "FAIL" not in capsys.readouterr().err

    def test_trace_mem_spans_annotates_every_span(self, tmp_path, capsys):
        trace = tmp_path / "mem.jsonl"
        rc = main(
            [
                "trace",
                "compress95",
                "--mem-spans",
                "--trace-out",
                str(trace),
            ]
        )
        assert rc == 0
        spans = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        assert spans
        assert all("mem_peak_kb" in s["attrs"] for s in spans)

    def test_trace_without_mem_spans_has_no_annotation(self, tmp_path):
        trace = tmp_path / "plain.jsonl"
        assert main(
            ["trace", "compress95", "--trace-out", str(trace)]
        ) == 0
        spans = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        assert spans
        assert all("mem_peak_kb" not in s["attrs"] for s in spans)
