"""The analysis service: HTTP protocol, differential fidelity, coalescing.

The contract under test is the acceptance criterion of the service PR: a
request answered by the daemon is **bit-identical** (modulo wall-clock
timings) to the same configuration run directly through
:func:`repro.service.api.execute_request` — including when four concurrent
clients share one daemon and one artifact cache — and a repeated identical
request is served from that cache, visibly in ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    ServiceClient,
    ServiceError,
    SweepRequest,
    comparable_payload,
    execute_request,
    make_server,
)
from repro.service import daemon as daemon_mod

TARGET = "gen-small"


def _request(**overrides) -> AnalysisRequest:
    return AnalysisRequest(**{"target": TARGET, "check": True, **overrides})


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One daemon on an ephemeral port with a disk cache, shared by the
    whole module (its cache state is part of what the tests exercise)."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    service = AnalysisService(jobs=4, cache_dir=str(cache_dir))
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.shutdown()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def direct_payload():
    """The oracle: the same request executed in-process, uncached."""
    return execute_request(_request())


# -- protocol basics -------------------------------------------------------


def test_healthz(served):
    _, client = served
    health = client.wait_ready(timeout=10)
    assert health["status"] == "ok"
    assert health["workers"] == 4
    assert "cache" in health


def test_unknown_endpoint_and_job_are_404(served):
    _, client = served
    with pytest.raises(ServiceError) as exc:
        client._request("GET", "/v1/nope")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client.job("job-999999")
    assert exc.value.status == 404


def test_bad_requests_are_400(served):
    _, client = served
    for body in (
        {"target": "no-such-target"},
        {"target": TARGET, "bogus": 1},
        {"target": TARGET, "source": "func main() { return 0; }"},
        {"target": TARGET, "engine": "warp-drive"},
        {"target": "gen:nonsense"},
        {},
    ):
        with pytest.raises(ServiceError) as exc:
            client.submit(body)
        assert exc.value.status == 400, body


def test_metrics_scrape_shape(served):
    _, client = served
    client.analyze(_request())  # at least one request behind the counters
    assert client.metrics_content_type() == PROMETHEUS_CONTENT_TYPE
    text = client.metrics()
    assert text.endswith("\n")
    assert "# TYPE repro_service_requests_total counter" in text
    assert "# TYPE repro_service_request_latency_ms histogram" in text
    # Dotted pipeline counter names arrive sanitized, never raw.
    names = {
        line.split("{")[0].split(" ")[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    assert names and all("." not in name for name in names)


# -- differential fidelity --------------------------------------------------


def test_daemon_matches_direct_execution(served, direct_payload):
    _, client = served
    result = client.analyze(_request())
    assert comparable_payload(result) == comparable_payload(direct_payload)
    # The deterministic half round-trips JSON losslessly (so two clients
    # comparing responses compare the same bytes).
    wire = json.dumps(comparable_payload(result), sort_keys=True)
    assert json.loads(wire) == comparable_payload(result)


def test_concurrent_clients_share_cache_and_agree(served, direct_payload):
    """Four clients hammer the daemon at once; every response equals the
    direct-execution oracle bit for bit."""
    _, client = served
    with ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(lambda _: client.analyze(_request()), range(4)))
    for result in results:
        assert comparable_payload(result) == comparable_payload(direct_payload)


def test_repeat_request_is_a_cache_hit_in_metrics(served, direct_payload):
    """A repeated identical request recomputes nothing: the cache-hit
    counters in /metrics move, and the answer is unchanged."""
    _, client = served

    def hit_count(text: str) -> int:
        return sum(
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_cache_hits_total{")
        )

    client.analyze(_request())  # ensure at least one completed run
    before = hit_count(client.metrics())
    result = client.analyze(_request())
    after = hit_count(client.metrics())
    assert after > before
    assert comparable_payload(result) == comparable_payload(direct_payload)


def test_engine_knobs_travel_with_the_request(served):
    """Both solver engines answer through the daemon with identical
    analysis content (their equivalence theorem, via HTTP)."""
    _, client = served
    generic = client.analyze(
        _request(dataflow_engine="generic", wz_engine="generic", check=False)
    )
    compiled = client.analyze(
        _request(dataflow_engine="compiled", wz_engine="compiled", check=False)
    )
    assert generic["summary"] == compiled["summary"]
    assert generic["config"]["wz_engine"] == "generic"
    assert compiled["config"]["wz_engine"] == "compiled"


def test_inline_source_submission(served):
    _, client = served
    with open("examples/running_example.mc") as f:
        source = f.read()
    request = AnalysisRequest(
        source=source,
        name="running_example.mc",
        args=(2,),
        inputs={
            "sel1": [1] + [0] * 15,
            "sel2": [1] + [0] * 7 + [1] + [0] * 7,
            "cont": [0] * 8 + [1, 0, 0, 0, 0, 0, 0, 0],
        },
        check=True,
    )
    result = client.analyze(request)
    direct = execute_request(request)
    assert comparable_payload(result) == comparable_payload(direct)
    assert not result["diagnostics"]["has_errors"]
    sharp = result["summary"]["sharpening"]
    assert sharp["qualified_nonlocal"] > sharp["iterative_nonlocal"]


def test_sweep_endpoint_matches_driver(served):
    _, client = served
    request = SweepRequest(workloads=("compress95",), ca_values=(0.97,))
    result = client.sweep(request)
    from repro.service import execute_sweep

    direct = execute_sweep(request)
    assert result["artifacts"] == direct["artifacts"]
    assert not result["diagnostics"]["has_errors"]


# -- job lifecycle ----------------------------------------------------------


def test_job_listing_and_payload(served):
    _, client = served
    submitted = client.submit(_request())
    job = client.wait(submitted["job"])
    assert job["kind"] == "analyze"
    assert job["label"] == TARGET
    assert job["duration_s"] >= 0
    listing = client.jobs()
    assert any(j["id"] == submitted["job"] for j in listing)
    assert all("result" not in j for j in listing)  # summaries stay small


def test_failed_job_reports_error_state(served):
    """A job that dies mid-analysis becomes an error *response*, with the
    daemon healthy throughout."""
    _, client = served
    submitted = client.submit(
        {"source": "func main() { return undeclared_var; }", "name": "bad.mc"}
    )
    with pytest.raises(ServiceError, match="failed"):
        client.wait(submitted["job"], timeout=60)
    assert client.health()["status"] == "ok"


def test_identical_inflight_submissions_coalesce(monkeypatch):
    """While a request is queued or running, an identical submission shares
    its job id instead of queueing a duplicate computation."""
    gate = threading.Event()
    started = threading.Event()
    real = daemon_mod.execute_request

    def gated(request, cache):
        started.set()
        assert gate.wait(30)
        return real(request, cache)

    monkeypatch.setattr(daemon_mod, "execute_request", gated)
    service = AnalysisService(jobs=1)
    try:
        first, coalesced1 = service.submit(_request(check=False))
        assert not coalesced1
        assert started.wait(30)
        second, coalesced2 = service.submit(_request(check=False))
        assert second is first and coalesced2
        other, coalesced3 = service.submit(_request(check=True))  # different fp
        assert other is not first and not coalesced3
        gate.set()
        service.wait(first, timeout=120)
        service.wait(other, timeout=120)
        assert first.coalesced == 1
        assert first.state == "done" and other.state == "done"
    finally:
        gate.set()
        service.shutdown()


def test_shutdown_drains_queued_jobs(monkeypatch):
    gate = threading.Event()
    real = daemon_mod.execute_request

    def gated(request, cache):
        assert gate.wait(30)
        return real(request, cache)

    monkeypatch.setattr(daemon_mod, "execute_request", gated)
    service = AnalysisService(jobs=1)
    running, _ = service.submit(_request(check=False))
    queued, _ = service.submit(_request(check=True))
    done = threading.Thread(target=service.shutdown, kwargs={"drain": True})
    done.start()
    gate.set()
    done.join(timeout=120)
    assert not done.is_alive()
    assert running.state == "done" and queued.state == "done"
    with pytest.raises(daemon_mod.ServiceClosed):
        service.submit(_request())


def test_shutdown_without_drain_fails_queued_jobs(monkeypatch):
    gate = threading.Event()
    real = daemon_mod.execute_request

    def gated(request, cache):
        assert gate.wait(30)
        return real(request, cache)

    monkeypatch.setattr(daemon_mod, "execute_request", gated)
    service = AnalysisService(jobs=1)
    running, _ = service.submit(_request(check=False))
    queued, _ = service.submit(_request(check=True))
    # Give the worker a beat to pick up the first job, then abandon the rest.
    deadline = time.monotonic() + 10
    while running.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.01)
    done = threading.Thread(target=service.shutdown, kwargs={"drain": False})
    done.start()
    gate.set()
    done.join(timeout=120)
    assert not done.is_alive()
    assert running.state == "done"  # in-flight work always completes
    assert queued.state == "error" and "shut down" in queued.error


def test_submit_after_shutdown_is_503():
    service = AnalysisService(jobs=1)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        client.wait_ready(timeout=10)
        service.shutdown()
        with pytest.raises(ServiceError) as exc:
            client.submit(_request())
        assert exc.value.status == 503
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# -- CLI ---------------------------------------------------------------------


def test_cmd_submit_against_live_daemon(capsys):
    from repro.cli import main

    service = AnalysisService(jobs=2)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        rc = main(["submit", TARGET, "--url", url])
        out = capsys.readouterr()
        assert rc == 0
        assert "qualified non-local" in out.out
        assert "# checks: 0 error(s)" in out.err

        rc = main(["submit", TARGET, "--url", url, "--json", "--no-check"])
        out = capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.out)
        assert payload["workload"] == TARGET
        assert payload["diagnostics"] is None
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
        thread.join(timeout=10)


def test_cmd_submit_rejects_bad_invocations(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["submit"])  # neither target nor --file
    mc = tmp_path / "p.mc"
    mc.write_text("func main() { return 0; }\n")
    with pytest.raises(SystemExit):
        main(["submit", TARGET, "--file", str(mc)])  # both
    with pytest.raises(SystemExit, match="cannot reach|failed"):
        # Nothing listens on this closed port: a clean client error, not a
        # traceback.
        main(["submit", TARGET, "--url", "http://127.0.0.1:9", "--timeout", "2"])
