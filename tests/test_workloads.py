"""Workload sanity tests: all seven SPEC95-like programs compile, validate,
run deterministically, and exhibit the control-flow character claimed for
them."""

import pytest

from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.ir import validate_module
from repro.workloads import WORKLOAD_NAMES, all_workloads, get_workload
from repro.workloads.running_example import running_example_module


@pytest.fixture(scope="module")
def workloads():
    return all_workloads()


class TestRegistry:
    def test_seven_workloads(self):
        assert len(WORKLOAD_NAMES) == 7
        assert set(WORKLOAD_NAMES) == {
            "compress95",
            "go95",
            "ijpeg95",
            "li95",
            "m88ksim95",
            "perl95",
            "vortex95",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_workload("gcc95")

    def test_factories_return_fresh_objects(self):
        assert get_workload("li95") is not get_workload("li95")


class TestCompilation:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_compiles_and_validates(self, name, workloads):
        module = compile_program(workloads[name].source)
        validate_module(module)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_train_and_ref_run_clean(self, name, workloads):
        wl = workloads[name]
        module = compile_program(wl.source)
        interp = Interpreter(module, profile_mode="bl", track_sites=False)
        train = interp.run(wl.train_args, wl.train_inputs)
        ref = interp.run(wl.ref_args, wl.ref_inputs)
        assert train.instr_count > 1000
        assert ref.instr_count > train.instr_count  # ref is the bigger input
        assert train.output and ref.output  # observable behaviour exists

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic(self, name):
        a = get_workload(name)
        b = get_workload(name)
        assert a.source == b.source
        assert a.train_inputs == b.train_inputs
        assert a.ref_inputs == b.ref_inputs
        module = compile_program(a.source)
        interp = Interpreter(module, profile_mode="bl", track_sites=False)
        r1 = interp.run(a.train_args, a.train_inputs)
        r2 = interp.run(a.train_args, a.train_inputs)
        assert r1.output == r2.output and r1.cost == r2.cost
        assert r1.profiles == r2.profiles

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_train_and_ref_inputs_differ(self, name, workloads):
        wl = workloads[name]
        assert wl.train_inputs != wl.ref_inputs


class TestCharacter:
    def test_go_is_the_path_outlier(self, workloads):
        """The paper's go executed far more paths than the others; our go95
        must dominate every other workload's executed-path count."""
        counts = {}
        for name, wl in workloads.items():
            module = compile_program(wl.source)
            run = Interpreter(module, track_sites=False).run(
                wl.train_args, wl.train_inputs
            )
            counts[name] = sum(p.num_distinct for p in run.profiles.values())
        go = counts.pop("go95")
        assert go > max(counts.values())

    def test_compress_is_hot_path_concentrated(self, compress_run):
        """A tiny set of paths covers 97% of compress's execution."""
        assert compress_run.hot_path_count(0.97) <= 4

    def test_running_example_module_validates(self):
        validate_module(running_example_module())
