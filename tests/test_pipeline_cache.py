"""Differential tests for the content-addressed artifact cache.

The contract: a cold run and a warm run of the same workload produce
*identical* analysis results — same solver values, same Table 2 row, same
figure data — while the warm run performs **zero** recompiles and **zero**
reprofiles (every compile/profile artifact is served from disk).  The
ISSUE's headline criterion — a warm Figure 11 sweep does at least 3x fewer
compile+profile invocations than a cold one — is asserted directly.
"""

from __future__ import annotations

import pickle

import pytest

from repro.evaluation import CA_SWEEP, DEFAULT_CA, DEFAULT_CR, WorkloadRun
from repro.pipeline import (
    COMPILE_PROFILE_KINDS,
    ArtifactCache,
    CachedWorkloadRun,
    content_key,
    make_run,
)
from repro.workloads import get_workload

WORKLOAD = "compress95"


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact-cache")


@pytest.fixture(scope="module")
def cold_run(cache_dir):
    return CachedWorkloadRun(get_workload(WORKLOAD), ArtifactCache(cache_dir))


@pytest.fixture(scope="module")
def warm_run(cache_dir, cold_run):
    # Populate the qualified artifacts for the full Figure 11 sweep before
    # the warm run starts, so the warm sweep can be fully cache-served.
    for ca in CA_SWEEP:
        cold_run.qualified(ca, DEFAULT_CR)
    return CachedWorkloadRun(get_workload(WORKLOAD), ArtifactCache(cache_dir))


def _qualified_projection(run: WorkloadRun, ca: float, cr: float):
    """Hashable/comparable view of every per-routine analysis result.

    ``CondConstResult`` is a plain class without structural equality, so the
    differential compares its meaningful projections instead.
    """
    out = {}
    for name, qa in sorted(run.qualified(ca, cr).items()):
        final = qa.final_analysis()
        out[name] = (
            qa.traced,
            qa.hot_paths,
            {v: qa.baseline.env_in[v] for v in qa.baseline.view.cfg.vertices},
            sorted(qa.baseline.executable_edges),
            {v: final.env_in[v] for v in final.view.cfg.vertices},
        )
    return out


# -- cold/warm differential ---------------------------------------------------


def test_cold_run_computes_each_compile_profile_artifact_once(cold_run):
    stats = cold_run.cache.stats
    # one module compile + one train profile + one reference run
    assert stats.computations(COMPILE_PROFILE_KINDS) == 3
    for kind in COMPILE_PROFILE_KINDS:
        assert stats.misses.get(kind) == 1


def test_warm_run_recompiles_and_reprofiles_nothing(warm_run):
    stats = warm_run.cache.stats
    assert stats.computations(COMPILE_PROFILE_KINDS) == 0
    for kind in COMPILE_PROFILE_KINDS:
        assert stats.hits.get(kind) == 1


def test_warm_figure11_sweep_is_at_least_3x_cheaper(cold_run, warm_run):
    for ca in CA_SWEEP:
        warm_run.graph_sizes(ca, DEFAULT_CR)
    cold = cold_run.cache.stats.computations(COMPILE_PROFILE_KINDS)
    warm = warm_run.cache.stats.computations(COMPILE_PROFILE_KINDS)
    assert cold >= 3
    assert warm == 0
    assert 3 * max(warm, 1) <= cold or warm == 0  # >= 3x fewer invocations


def test_warm_sweep_serves_qualified_pipelines_from_disk(warm_run):
    for ca in CA_SWEEP:
        warm_run.qualified(ca, DEFAULT_CR)
    assert warm_run.cache.stats.misses.get("qualified", 0) == 0
    assert warm_run.cache.stats.hits.get("qualified", 0) >= len(CA_SWEEP)


def test_cold_and_warm_solutions_are_identical(cold_run, warm_run):
    for ca in (0.0, DEFAULT_CA, 1.0):
        assert _qualified_projection(
            cold_run, ca, DEFAULT_CR
        ) == _qualified_projection(warm_run, ca, DEFAULT_CR)


def test_cold_and_warm_table2_rows_are_identical(cold_run, warm_run):
    assert cold_run.table2(DEFAULT_CA, DEFAULT_CR) == warm_run.table2(
        DEFAULT_CA, DEFAULT_CR
    )
    assert cold_run.aggregate_classification(
        DEFAULT_CA, DEFAULT_CR
    ) == warm_run.aggregate_classification(DEFAULT_CA, DEFAULT_CR)


def test_cached_run_matches_uncached_run(cold_run):
    plain = WorkloadRun(get_workload(WORKLOAD))
    assert plain.table2(DEFAULT_CA, DEFAULT_CR) == cold_run.table2(
        DEFAULT_CA, DEFAULT_CR
    )
    for ca in (0.0, DEFAULT_CA):
        assert plain.graph_sizes(ca, DEFAULT_CR) == cold_run.graph_sizes(
            ca, DEFAULT_CR
        )


# -- ArtifactCache unit behaviour ---------------------------------------------


def test_memo_computes_once_and_persists(tmp_path):
    calls = []

    def compute():
        calls.append(1)
        return {"x": 42}

    cache = ArtifactCache(tmp_path)
    key = content_key("unit", "alpha")
    assert cache.memo("module", key, compute) == {"x": 42}
    assert cache.memo("module", key, compute) == {"x": 42}
    assert len(calls) == 1

    # A fresh instance over the same directory hits the disk layer.
    fresh = ArtifactCache(tmp_path)
    assert fresh.memo("module", key, compute) == {"x": 42}
    assert len(calls) == 1
    assert fresh.stats.hits.get("module") == 1


def test_distinct_inputs_get_distinct_keys():
    k1 = content_key("module", "int main() {}")
    k2 = content_key("module", "int main() { return 1; }")
    k3 = content_key("train-run", "int main() {}")
    assert len({k1, k2, k3}) == 3


def test_corrupted_artifact_is_treated_as_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = content_key("unit", "beta")
    cache.memo("module", key, lambda: [1, 2, 3])

    # Clobber the on-disk pickle; a fresh instance must recompute.
    (path,) = list(tmp_path.glob("module/*.pkl"))
    path.write_bytes(b"not a pickle")
    fresh = ArtifactCache(tmp_path)
    assert fresh.memo("module", key, lambda: [4, 5, 6]) == [4, 5, 6]
    # ... and repair the artifact on disk.
    assert pickle.loads(path.read_bytes()) == [4, 5, 6]


def test_in_memory_cache_needs_no_directory():
    cache = ArtifactCache(None)
    key = content_key("unit", "gamma")
    assert cache.memo("module", key, lambda: "v") == "v"
    assert cache.memo("module", key, lambda: "w") == "v"


def test_make_run_dispatches_on_cache_dir(tmp_path):
    assert isinstance(make_run(get_workload(WORKLOAD)), WorkloadRun)
    cached = make_run(get_workload(WORKLOAD), tmp_path)
    assert isinstance(cached, CachedWorkloadRun)


def test_dataflow_engine_is_part_of_the_qualified_key(tmp_path):
    """Artifacts must record which solver engine produced them: switching
    ``dataflow_engine`` on the same cache may not serve the other engine's
    qualified results."""
    cache = ArtifactCache(tmp_path)
    first = CachedWorkloadRun(
        get_workload(WORKLOAD), cache, dataflow_engine="compiled"
    )
    first.qualified(DEFAULT_CA, DEFAULT_CR)
    fn_count = len(first.module.functions)
    assert cache.stats.misses.get("qualified", 0) == fn_count

    second = CachedWorkloadRun(
        get_workload(WORKLOAD), ArtifactCache(tmp_path), dataflow_engine="generic"
    )
    second.qualified(DEFAULT_CA, DEFAULT_CR)
    assert second.cache.stats.misses.get("qualified", 0) == fn_count  # no hits

    third = CachedWorkloadRun(
        get_workload(WORKLOAD), ArtifactCache(tmp_path), dataflow_engine="compiled"
    )
    third.qualified(DEFAULT_CA, DEFAULT_CR)
    assert third.cache.stats.hits.get("qualified", 0) == fn_count  # same engine hits


# -- bounded memory layer --------------------------------------------------


def test_memory_layer_is_bounded_lru():
    """The in-process layer holds at most ``memory_entries`` artifacts, so
    long sweeps no longer keep every artifact they ever touched live."""
    cache = ArtifactCache(None, memory_entries=4)
    for i in range(10):
        cache.memo("module", content_key("lru", i), lambda i=i: i)
    assert len(cache._memory) == 4
    assert cache.stats.evictions.get("module", 0) == 6
    # The most recently used entries survive...
    hits_before = cache.stats.hits.get("module", 0)
    assert cache.memo("module", content_key("lru", 9), lambda: "X") == 9
    assert cache.stats.hits.get("module", 0) == hits_before + 1
    # ...and an evicted entry recomputes (no disk layer to fall back on).
    assert cache.memo("module", content_key("lru", 0), lambda: "recomputed") == "recomputed"


def test_lru_eviction_falls_back_to_disk(tmp_path):
    cache = ArtifactCache(tmp_path, memory_entries=2)
    keys = [content_key("lru-disk", i) for i in range(5)]
    for i, key in enumerate(keys):
        cache.memo("module", key, lambda i=i: [i])
    assert len(cache._memory) == 2
    # Evicted from memory, but the disk artifact still serves a hit — the
    # value round-trips, it is just no longer pinned in RAM.
    assert cache.memo("module", keys[0], lambda: "MISS") == [0]
    assert cache.stats.hits.get("module", 0) == 1


def test_lru_touch_refreshes_recency():
    cache = ArtifactCache(None, memory_entries=2)
    a, b, c = (content_key("touch", x) for x in "abc")
    cache.memo("module", a, lambda: "A")
    cache.memo("module", b, lambda: "B")
    cache.memo("module", a, lambda: "?")  # touch a: b is now the LRU entry
    cache.memo("module", c, lambda: "C")  # evicts b, not a
    assert cache.memo("module", a, lambda: "RECOMPUTED") == "A"
    assert cache.memo("module", b, lambda: "RECOMPUTED") == "RECOMPUTED"


def test_memory_entries_must_be_positive():
    with pytest.raises(ValueError):
        ArtifactCache(None, memory_entries=0)
    # None disables the bound entirely.
    unbounded = ArtifactCache(None, memory_entries=None)
    for i in range(600):
        unbounded.memo("module", content_key("unbounded", i), lambda i=i: i)
    assert len(unbounded._memory) == 600
    assert unbounded.stats.evictions == {}


# -- canonical key stability -----------------------------------------------


def test_content_key_is_stable_across_processes():
    """Cache keys are part of the on-disk contract: this digest is pinned
    so a canonicalization change (which would orphan every cached
    artifact) fails loudly instead of silently going cold."""
    key = content_key(
        "pin",
        float("nan"),
        float("inf"),
        float("-inf"),
        b"\x00\xff",
        {"b": 2, "a": [1, True, None, 0.5]},
    )
    assert key == "204dad8b213c7f00fecd651b575370c264ec333e8c188ae6687d8c596424407f"


def test_content_key_distinguishes_lookalike_values():
    # Non-finite floats are tagged, not collapsed to null.
    assert content_key("k", float("nan")) != content_key("k", None)
    assert content_key("k", float("inf")) != content_key("k", float("-inf"))
    assert content_key("k", float("nan")) == content_key("k", float("nan"))
    # Bytes are tagged by content, and differ from their hex spelling.
    assert content_key("k", b"\x01") == content_key("k", b"\x01")
    assert content_key("k", b"\x01") != content_key("k", "01")
    # bool is not collapsed into int.
    assert content_key("k", True) != content_key("k", 1)
