"""Scale guards: the pipeline must stay tractable on routines an order of
magnitude larger than the workloads (complexity regressions show up here
long before they hurt the benchmarks)."""

import time

from repro.core import run_qualified
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.ir import validate_module
from repro.opt import optimize_module


def big_dispatch_source(cases: int = 60) -> str:
    """A dispatch routine with ``cases`` arms (several hundred blocks)."""
    arms = []
    for i in range(cases):
        arms.append(
            f"if (op == {i}) {{ w = {i % 7 + 1}; u = {i % 5 + 2}; }} else {{"
        )
    chain = "\n    ".join(arms) + " w = 1; u = 1; " + "}" * cases
    return f"""
global stream[4096];

func dispatch(n) {{
  var pc = 0;
  var acc = 0;
  while (pc < n) {{
    var op = stream[pc];
    var w; var u;
    {chain}
    acc = acc + w * 8 + u;
    pc = pc + 1;
  }}
  print(acc);
  return acc;
}}

func main(n) {{ return dispatch(n); }}
"""


class TestScale:
    def test_pipeline_on_a_large_routine(self):
        source = big_dispatch_source(60)
        module = compile_program(source)
        validate_module(module)
        # Skewed stream: a few opcodes dominate, like real dispatch loops.
        stream = [(i * 7) % 8 for i in range(1200)]

        t0 = time.perf_counter()
        run = Interpreter(module, track_sites=False).run([1200], {"stream": stream})
        interp_seconds = time.perf_counter() - t0

        fn = module.function("dispatch")
        assert len(fn.blocks) > 150

        t0 = time.perf_counter()
        qa = run_qualified(fn, run.profiles["dispatch"], ca=0.97)
        pipeline_seconds = time.perf_counter() - t0

        assert qa.traced
        assert qa.hpg_size > qa.original_size
        # Generous ceilings: catching quadratic blowups, not timing noise.
        assert interp_seconds < 30
        assert pipeline_seconds < 30

    def test_whole_module_optimization_scales(self):
        source = big_dispatch_source(40)
        module = compile_program(source)
        stream = [(i * 5) % 6 for i in range(800)]
        run = Interpreter(module, track_sites=False).run([800], {"stream": stream})

        t0 = time.perf_counter()
        optimized, reports = optimize_module(module, run.profiles, ca=0.97)
        seconds = time.perf_counter() - t0
        assert seconds < 60

        check = Interpreter(optimized, profile_mode=None, track_sites=False).run(
            [800], {"stream": stream}
        )
        assert check.output == run.output
        assert check.cost < run.cost  # hot arms folded

    def test_many_paths_routine_traces_without_blowup(self):
        """A go-like routine with 2^8 static paths per activation: the HPG
        stays linear in the number of *hot* paths, not potential paths."""
        conds = "\n  ".join(
            f"var c{i} = data[(x + {i}) & 63];\n"
            f"  if (c{i} > 0) {{ s = s + {i + 1}; }} else {{ s = s - 1; }}"
            for i in range(8)
        )
        source = f"""
global data[64];
func f(x) {{
  var s = 0;
  {conds}
  return s;
}}
func main(n) {{
  var i = 0;
  var t = 0;
  while (i < n) {{
    t = t + f(i);
    i = i + 1;
  }}
  print(t);
  return t;
}}
"""
        module = compile_program(source)
        data = [1 if (i * 31) % 3 else -1 for i in range(64)]
        run = Interpreter(module, track_sites=False).run([200], {"data": data})
        fn = module.function("f")
        profile = run.profiles["f"]
        qa = run_qualified(fn, profile, ca=0.97)
        assert qa.traced
        # Linear-ish growth: bounded by (hot paths) x (max path length).
        max_len = max(len(p) for p in qa.hot_paths)
        assert qa.hpg_size <= len(fn.blocks) + len(qa.hot_paths) * max_len
