"""Qualifying arbitrary data-flow problems (the paper's generality claim)."""

from repro.core import qualify_problem
from repro.dataflow.problems import (
    AvailableExpressions,
    CopyPropagation,
    LiveVariables,
    ReachingDefinitions,
)
from repro.stats import render_venn, venn_summary


def _reaching_defs(view):
    return ReachingDefinitions(view.params, view.cfg.entry)


class TestQualifiedReachingDefs:
    def test_hot_duplicates_resolve_definitions(
        self, example_module, example_profile
    ):
        """On the running example, the use of `a` at H sees two reaching
        definitions on the plain CFG but exactly one at hot duplicates."""
        fn = example_module.function("work")
        qs = qualify_problem(_reaching_defs, fn, example_profile, ca=1.0)
        assert qs.traced

        def a_defs(defs):
            return {d for d in defs if d[2] == "a"}

        assert len(a_defs(qs.baseline_in("H"))) == 2
        resolved = [
            dup
            for dup in qs.duplicates("H")
            if len(a_defs(qs.qualified_in(dup))) == 1
        ]
        assert len(resolved) >= 4

    def test_untraced_at_zero_coverage(self, example_module, example_profile):
        fn = example_module.function("work")
        qs = qualify_problem(_reaching_defs, fn, example_profile, ca=0.0)
        assert not qs.traced
        assert qs.duplicates("H") == ("H",)
        assert qs.qualified_in("H") == qs.baseline_in("H")


class TestQualifiedCopyProp:
    def test_copy_survives_on_some_duplicate(
        self, example_module, example_profile
    ):
        """`n = i` creates the copy (n, i) at I regardless of path, so both
        plain and qualified agree — sanity for must problems on HPGs."""
        fn = example_module.function("work")
        qs = qualify_problem(
            lambda view: CopyPropagation(), fn, example_profile, ca=1.0
        )
        for dup in qs.duplicates("I"):
            # At I's entry, no copy holds yet (it's created inside I).
            value = qs.qualified_in(dup)
            assert ("n", "i") not in value


class TestQualifiedBackward:
    def test_liveness_runs_on_hpg(self, example_module, example_profile):
        """Backward problems solve on the traced graph too (the framework is
        direction-agnostic)."""
        fn = example_module.function("work")
        qs = qualify_problem(
            lambda view: LiveVariables(), fn, example_profile, ca=1.0
        )
        for dup in qs.duplicates("H"):
            # a and b are read by H's first instruction on every duplicate.
            assert {"a", "b"} <= set(qs.qualified.value_out[dup])


class TestQualifiedAvailableExprs:
    def test_duplication_makes_expressions_available(
        self, example_module, example_profile
    ):
        """t1 = base + i at B and t2 = base + i at E: available-expressions
        already catches this on the plain CFG (no kill between), so plain
        and qualified agree at E — a no-regression check for must problems."""
        from repro.dataflow.problems.available_exprs import expression_of
        from repro.ir import BinOp, Var

        fn = example_module.function("work")
        qs = qualify_problem(
            lambda view: AvailableExpressions(), fn, example_profile, ca=1.0
        )
        expr = expression_of(BinOp("t", "add", Var("base"), Var("i")))
        assert expr in qs.baseline_in("E")
        for dup in qs.duplicates("E"):
            assert expr in qs.qualified_in(dup)


class TestVennSummary:
    def test_regions_sum_to_total(self, example_qualified, example_run):
        from repro.stats import classify_constants

        c = classify_constants(
            example_qualified,
            example_run.profiles["work"],
            example_run.site_stats,
        )
        v = venn_summary(c)
        assert v.total == c.total_dynamic
        assert v.other >= 0

    def test_render_contains_all_regions(self, example_qualified, example_run):
        from repro.stats import classify_constants

        c = classify_constants(example_qualified, example_run.profiles["work"])
        text = render_venn(venn_summary(c))
        for word in ("Local", "Iterative", "Variable", "Unknowable", "Other"):
            assert word in text
