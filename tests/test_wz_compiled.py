"""Unit tests for the dense env-array Wegman–Zadek engine.

The generic solver is the oracle: on every graph both engines must agree on
the decoded environments, the executable-edge set, and the worklist's exact
visit counts.  The corpus-scale sweep lives in ``test_wz_differential.py``;
here we pin the engine selection rules, the block-lowering cache, and the
memoized ``site_values()``/``output_env()`` accessors.
"""

import pytest

from repro.dataflow import (
    BOT,
    TOP,
    ConstEnv,
    GraphView,
    analyze,
    get_default_wz_engine,
    set_default_wz_engine,
    wz_engine_scope,
)
from repro.dataflow import wegman_zadek as wz
from repro.dataflow import wz_dense
from repro.dataflow.wz_compiled import WZ_AUTO_MIN_VERTICES, analyze_compiled
from repro.dataflow.wz_dense import (
    W_CONST,
    clear_lowering_cache,
    lower_transfer,
    run_program,
)
from repro.ir import IRBuilder


def assert_wz_match(view, entry_env=None):
    """Both engines on one view: results must be bit-identical."""
    g = analyze(view, entry_env, engine="generic")
    c = analyze(view, entry_env, engine="compiled")
    assert g.engine == "generic" and c.engine == "compiled"
    assert g.env_in == c.env_in
    assert g.executable_edges == c.executable_edges
    assert g.visits == c.visits
    assert g.visit_counts == c.visit_counts
    for v in view.cfg.vertices:
        if view.block_of(v) is not None:
            assert g.site_values(v) == c.site_values(v)
            assert g.output_env(v) == c.output_env(v)
    return g, c


def straight_line():
    b = IRBuilder("f")
    b.block("entry")
    b.assign("x", 2)
    b.jump("next")
    b.block("next")
    b.binop("y", "mul", "x", 3)
    b.ret("y")
    return b.finish()


def diamond(left, right):
    b = IRBuilder("f", ["p"])
    b.block("entry")
    b.branch("p", "l", "r")
    b.block("l")
    b.assign("x", left)
    b.jump("join")
    b.block("r")
    b.assign("x", right)
    b.jump("join")
    b.block("join")
    b.binop("y", "add", "x", 1)
    b.ret("y")
    return b.finish()


def const_branch():
    b = IRBuilder("f")
    b.block("entry")
    b.assign("c", 1)
    b.branch("c", "live", "dead")
    b.block("live")
    b.assign("x", 10)
    b.jump("join")
    b.block("dead")
    b.assign("x", 99)
    b.jump("join")
    b.block("join")
    b.binop("y", "add", "x", 0)
    b.ret("y")
    return b.finish()


def loop():
    b = IRBuilder("f", ["p"])
    b.block("entry")
    b.assign("i", 0)
    b.jump("head")
    b.block("head")
    b.branch("p", "body", "exit")
    b.block("body")
    b.binop("i", "add", "i", 1)
    b.jump("head")
    b.block("exit")
    b.ret("i")
    return b.finish()


def impure():
    b = IRBuilder("f")
    b.block("entry")
    b.load("x", "mem", 0)
    b.call("y", "abs", 1)
    b.binop("z", "add", "x", "y")
    b.ret("z")
    return b.finish()


class TestParity:
    @pytest.mark.parametrize(
        "fn",
        [
            straight_line(),
            diamond(5, 5),
            diamond(5, 7),
            const_branch(),
            loop(),
            impure(),
        ],
        ids=["straight", "diamond-eq", "diamond-ne", "const-branch", "loop",
             "impure"],
    )
    def test_hand_built_graphs(self, fn):
        assert_wz_match(GraphView.from_function(fn))

    def test_dead_leg_stays_unreachable(self):
        _, c = assert_wz_match(GraphView.from_function(const_branch()))
        assert not c.is_executable("dead")
        assert c.constant_sites("join") == {0: 10}

    def test_custom_entry_env(self):
        view = GraphView.from_function(diamond(5, 7))
        assert_wz_match(view, ConstEnv({"p": 1}))
        # With p pinned, the compiled engine must prune the same leg.
        c = analyze(view, ConstEnv({"p": 1}), engine="compiled")
        assert not c.is_executable("r")

    def test_constants_interned_during_solve(self):
        # Folding "i + 1" in the loop produces constants that were not in
        # any instruction; they are interned mid-solve and must decode back.
        _, c = assert_wz_match(GraphView.from_function(loop()))
        assert c.site_values("exit") == {}


class TestEngineSelection:
    def test_auto_keeps_generic_below_crossover(self):
        view = GraphView.from_function(straight_line())
        assert view.cfg.num_vertices < WZ_AUTO_MIN_VERTICES
        assert analyze(view).engine == "generic"

    def test_auto_uses_compiled_above_crossover(self):
        b = IRBuilder("f")
        labels = [f"b{i}" for i in range(WZ_AUTO_MIN_VERTICES + 1)]
        for label, nxt in zip(labels, labels[1:]):
            b.block(label)
            b.assign("x", 1)
            b.jump(nxt)
        b.block(labels[-1])
        b.ret("x")
        view = GraphView.from_function(b.finish())
        assert view.cfg.num_vertices >= WZ_AUTO_MIN_VERTICES
        assert analyze(view).engine == "compiled"

    def test_explicit_engine_overrides_auto(self):
        view = GraphView.from_function(straight_line())
        assert analyze(view, engine="compiled").engine == "compiled"
        assert analyze(view, engine="generic").engine == "generic"

    def test_bad_engine_rejected(self):
        view = GraphView.from_function(straight_line())
        with pytest.raises(ValueError):
            analyze(view, engine="turbo")

    def test_scope_sets_and_restores_default(self):
        assert get_default_wz_engine() == "auto"
        view = GraphView.from_function(straight_line())
        with wz_engine_scope("compiled"):
            assert get_default_wz_engine() == "compiled"
            assert analyze(view).engine == "compiled"
        assert get_default_wz_engine() == "auto"

    def test_set_default_validates(self):
        with pytest.raises(ValueError):
            set_default_wz_engine("turbo")


class TestLoweringCache:
    def test_lowering_is_cached_per_block(self, monkeypatch):
        clear_lowering_cache()
        calls = []
        orig = wz_dense.lower_block
        monkeypatch.setattr(
            wz_dense, "lower_block", lambda blk: (calls.append(1), orig(blk))[1]
        )
        block = straight_line().blocks["entry"]
        p1 = lower_transfer(block)
        p2 = lower_transfer(block)
        assert p1 is p2
        assert len(calls) == 1
        clear_lowering_cache()
        assert lower_transfer(block) is not p1
        assert len(calls) == 2

    def test_repeat_analyses_share_the_lowering(self, monkeypatch):
        clear_lowering_cache()
        fn = diamond(5, 7)
        view = GraphView.from_function(fn)
        analyze(view, engine="compiled")
        calls = []
        orig = wz_dense.lower_block
        monkeypatch.setattr(
            wz_dense, "lower_block", lambda blk: (calls.append(1), orig(blk))[1]
        )
        analyze(view, engine="compiled")
        analyze(view, engine="generic")
        assert calls == []

    def test_cache_evicts_least_recently_used(self, monkeypatch):
        clear_lowering_cache()
        monkeypatch.setattr(wz_dense, "_LOWER_CACHE_SIZE", 2)
        blocks = list(diamond(5, 7).blocks.values())[:3]
        for block in blocks:
            lower_transfer(block)
        assert len(wz_dense._lower_cache) == 2
        clear_lowering_cache()

    def test_const_operands_fold_at_lowering(self):
        b = IRBuilder("f")
        b.block("entry")
        b.binop("x", "add", 2, 3)
        b.ret("x")
        program = wz_dense.lower_block(b.finish().blocks["entry"])
        assert program.steps == ((W_CONST, "x", 5),)

    def test_run_program_matches_site_semantics(self):
        fn = impure()
        program = wz_dense.lower_block(fn.blocks["entry"])
        values = {}
        results = run_program(program, values)
        assert results == [BOT, BOT, BOT]
        assert values == {"x": BOT, "y": BOT, "z": BOT}


class TestMemoizedAccessors:
    def test_second_site_values_does_zero_transfer_work(self, monkeypatch):
        fn = straight_line()
        result = analyze(GraphView.from_function(fn), engine="generic")
        first = {v: result.site_values(v) for v in ("entry", "next")}
        out_first = result.output_env("next")

        def boom(*args, **kwargs):
            raise AssertionError("memoized accessor re-ran the transfer")

        monkeypatch.setattr(wz, "run_program", boom)
        monkeypatch.setattr(wz, "lower_transfer", boom)
        for v in ("entry", "next"):
            assert result.site_values(v) == first[v]
        assert result.output_env("next") == out_first

    def test_memo_survives_on_compiled_results_too(self, monkeypatch):
        result = analyze(
            GraphView.from_function(straight_line()), engine="compiled"
        )
        first = result.site_values("next")

        def boom(*args, **kwargs):
            raise AssertionError("memoized accessor re-ran the transfer")

        monkeypatch.setattr(wz, "run_program", boom)
        assert result.site_values("next") == first

    def test_results_pickle_without_the_memo(self):
        import pickle

        result = analyze(GraphView.from_function(straight_line()))
        result.site_values("next")  # populate the unpicklable memo
        clone = pickle.loads(pickle.dumps(result))
        assert clone.env_in == result.env_in
        assert clone.site_values("next") == result.site_values("next")


class TestCompiledFallback:
    def test_analyze_compiled_returns_result_directly(self):
        view = GraphView.from_function(straight_line())
        result = analyze_compiled(view)
        assert result is not None and result.engine == "compiled"
