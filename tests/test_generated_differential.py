"""Differential parity over the generated corpus.

The generator is the repo's supply of *organic* programs — shapes nobody
hand-tuned around the engines.  Two parities must hold on every one of
them:

* **interpreter** — ``Interpreter(engine="compiled")`` and
  ``engine="reference"`` produce identical :class:`RunResult`s, every
  field, profiles included;
* **dataflow** — ``solve(engine="compiled")`` and ``"generic"`` land on
  identical fixpoints for all five separable problems on every routine's
  CFG, under every worklist strategy.

The fast tier drives a small hypothesis sample of random specs (shrinking
gives a minimal failing program shape if an engine ever diverges); the slow
tier sweeps the registered presets including the 1k-vertex target.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow import GraphView, solve
from repro.dataflow.framework import SOLVER_STRATEGIES
from repro.dataflow.problems import (
    AvailableExpressions,
    CopyPropagation,
    LiveVariables,
    ReachingDefinitions,
    VeryBusyExpressions,
)
from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.workloads.generate import (
    GEN_PRESETS,
    GeneratorSpec,
    generated_workload,
)

from test_compiled_engine import assert_results_equal

SEPARABLE = (
    lambda view: ReachingDefinitions(view.params, view.cfg.entry),
    lambda view: LiveVariables(),
    lambda view: AvailableExpressions(),
    lambda view: VeryBusyExpressions(),
    lambda view: CopyPropagation(),
)


def assert_workload_parity(wl, *, strategies=("rpo",)):
    """Both parities for one workload's train run and module."""
    module = compile_program(wl.source)
    results = {
        engine: Interpreter(module, profile_mode="bl", engine=engine).run(
            wl.train_args, wl.train_inputs
        )
        for engine in ("reference", "compiled")
    }
    assert_results_equal(results["reference"], results["compiled"])

    for fn in module.functions.values():
        view = GraphView.from_function(fn)
        for make in SEPARABLE:
            for strategy in strategies:
                g = solve(make(view), view, engine="generic", strategy=strategy)
                c = solve(make(view), view, engine="compiled", strategy=strategy)
                assert c.value_in == g.value_in, (fn.name, make(view), strategy)
                assert c.value_out == g.value_out, (fn.name, make(view), strategy)


#: Small random shapes: enough structure to exercise branches, loops, and
#: call sites, small enough for a fast-tier hypothesis run.
gen_specs = st.builds(
    GeneratorSpec,
    seed=st.integers(min_value=0, max_value=2**16),
    funcs=st.integers(min_value=1, max_value=2),
    blocks_per_func=st.integers(min_value=8, max_value=24),
    loop_depth=st.integers(min_value=1, max_value=2),
    branch_density=st.sampled_from([0.0, 0.3, 0.6, 1.0]),
    correlation=st.sampled_from([0.0, 0.5, 0.9, 1.0]),
    hot_skew=st.sampled_from([0.5, 0.85, 1.0]),
    data_size=st.just(64),
    train_iters=st.integers(min_value=2, max_value=6),
    ref_iters=st.just(8),
)


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=gen_specs)
def test_random_generated_programs_hold_both_parities(spec):
    assert_workload_parity(generated_workload(spec))


@pytest.mark.slow
@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=gen_specs)
def test_random_generated_programs_hold_parities_all_strategies(spec):
    assert_workload_parity(
        generated_workload(spec), strategies=SOLVER_STRATEGIES
    )


def test_gen_small_preset_parity():
    """One registered preset stays in the fast tier as a smoke anchor."""
    assert_workload_parity(
        generated_workload(GEN_PRESETS["gen-small"], "gen-small")
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(GEN_PRESETS))
def test_preset_parity_sweep(name):
    """Every preset — including the 1k-vertex acceptance target — holds
    both parities under every strategy."""
    assert_workload_parity(
        generated_workload(GEN_PRESETS[name], name),
        strategies=SOLVER_STRATEGIES,
    )
