"""Context tupling (§4.3): equivalence with data-flow tracing.

Tracing and tupling solve the same qualified equations — one in the graph,
one in the lattice — so their solutions must coincide pointwise: the tupled
``q`` component at ``v`` equals the traced solution at ``(v, q)``, and the
reachable (vertex, state) pairs are exactly the traced vertices.
"""

from hypothesis import given, settings

from repro.core import run_qualified
from repro.core.tupling import tupled_analyze
from repro.dataflow.lattice import UNREACHABLE

from test_pipeline_properties import minic_programs


def _tupled_for(qa):
    return tupled_analyze(qa.function, qa.cfg, qa.recording, qa.automaton)


class TestRunningExampleEquivalence:
    def test_reachable_pairs_match_traced_vertices(self, example_qualified):
        qa = example_qualified
        tupled = _tupled_for(qa)
        traced_pairs = {
            (v[0], v[1]) for v in qa.hpg.cfg.vertices
        }
        tupled_pairs = {
            (v, q)
            for v in tupled.in_values
            for q in tupled.states_at(v)
        }
        # Tupling only visits WZ-executable pairs; tracing visits all
        # reachable pairs, so tupled ⊆ traced.
        assert tupled_pairs <= traced_pairs

    def test_solutions_coincide_pointwise(self, example_qualified):
        qa = example_qualified
        tupled = _tupled_for(qa)
        for vertex in qa.hpg.cfg.vertices:
            v, q = vertex
            traced_env = qa.hpg_analysis.input_env(vertex)
            tupled_env = tupled.solution(v, q)
            assert traced_env == tupled_env, vertex

    def test_papers_constants_via_tupling(self, example_qualified):
        """The tupled solution finds x = a + b constant at the same states
        tracing does."""
        qa = example_qualified
        tupled = _tupled_for(qa)
        values = set()
        for q in tupled.states_at("H"):
            env = tupled.solution("H", q)
            if env is UNREACHABLE:
                continue
            a, b = env.get("a"), env.get("b")
            if isinstance(a, int) and isinstance(b, int):
                values.add(a + b)
        assert values == {4, 5, 6}

    def test_merged_solution_matches_baseline_or_better(self, example_qualified):
        from repro.dataflow.lattice import leq_env

        qa = example_qualified
        tupled = _tupled_for(qa)
        for v in qa.cfg.vertices:
            merged = tupled.merged_solution(v)
            assert leq_env(qa.baseline.input_env(v), merged), v


class TestRandomEquivalence:
    @given(minic_programs())
    @settings(max_examples=15, deadline=None)
    def test_tracing_equals_tupling(self, program):
        from repro.frontend import compile_program
        from repro.interp import Interpreter

        source, args, data = program
        module = compile_program(source)
        run = Interpreter(module, profile_mode="bl").run(args, {"data": data})
        qa = run_qualified(module.function("main"), run.profiles["main"], ca=1.0)
        if not qa.traced:
            return
        tupled = _tupled_for(qa)
        for vertex in qa.hpg.cfg.vertices:
            v, q = vertex
            assert qa.hpg_analysis.input_env(vertex) == tupled.solution(v, q)
