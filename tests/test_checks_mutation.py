"""Mutation tests for the checker layer: each invariant family must catch a
deliberately seeded defect.  A checker that never fires is worse than no
checker — these tests are the negative controls for
``tests/test_checks_clean.py``.

Every test builds (or corrupts) its own objects; session-scoped fixtures are
only ever read to derive fresh copies.
"""

from __future__ import annotations

import pytest

from repro.checks import check_module_ir
from repro.checks.automaton_checks import (
    AUT_BAD_TRIE_SHAPE,
    AUT_INTERIOR_RECORDING,
    AUT_THEOREM2_MISMATCH,
    check_automaton,
)
from repro.checks.dataflow_checks import (
    DF_PROJECTION_UNSOUND,
    DF_RESIDUAL,
    check_dataflow,
)
from repro.checks.hpg_checks import (
    HPG_PROFILE_MASS_LOST,
    HPG_RECORDING_NOT_CARRIED,
    HPG_STATE_INCONSISTENT,
    check_hpg,
)
from repro.checks.lint import (
    LINT_CONSTANT_BRANCH,
    LINT_DEAD_STORE,
    LINT_UNREACHABLE_UNDER_CONSTANTS,
    LINT_USE_BEFORE_DEF,
    lint_function,
)
from repro.checks.profile_checks import (
    PROF_BLOCK_COUNT_MISMATCH,
    PROF_EDGE_NOT_IN_GRAPH,
    PROF_FINAL_NOT_RECORDING,
    PROF_FLOW_IMBALANCE,
    PROF_INTERIOR_RECORDING,
    PROF_PATH_SUM_MISMATCH,
    check_profile,
)
from repro.automaton.qualification import DOT
from repro.ir import (
    BasicBlock,
    Branch,
    Function,
    IRBuilder,
    Jump,
    Module,
    Ret,
    Var,
)
from repro.ir.cfg import Cfg
from repro.profiles.path_profile import BLPath, PathProfile
from repro.profiles.recording import recording_edges


@pytest.fixture()
def work_graph(example_module):
    cfg = Cfg.from_function(example_module.function("work"))
    return cfg, recording_edges(cfg)


@pytest.fixture()
def fresh_qa(example_module, example_profile):
    """A private qualified pipeline the test may corrupt freely."""
    from repro.core import run_qualified

    return run_qualified(
        example_module.function("work"), example_profile, ca=1.0
    )


# -- IR family -------------------------------------------------------------


def test_ir_checks_collect_every_defect():
    m = Module()
    m.add_function(
        Function(
            "f",
            blocks=[
                BasicBlock("entry", [], Branch(Var("c"), "next", "next")),
                BasicBlock("next", []),
                BasicBlock("orphan", [], Jump("nowhere")),
            ],
        )
    )
    # Structurally sound except for one unreachable block (reachability is
    # only checked once the skeleton is intact).
    m.add_function(
        Function(
            "g",
            blocks=[
                BasicBlock("entry", [], Jump("done")),
                BasicBlock("done", [], Ret()),
                BasicBlock("island", [], Jump("done")),
            ],
        )
    )
    diags = check_module_ir(m)
    # Collect-all: one pass reports the degenerate branch, the missing
    # terminator, the unknown target, the unreachable block, AND the
    # missing main — the raise-on-first validator only saw the first.
    assert {"IR003", "IR004", "IR005", "IR009", "IR010"} <= diags.codes()
    assert len(diags.errors) >= 5


# -- profile family --------------------------------------------------------


class TestProfileMutations:
    def corrupt(self, profile):
        return PathProfile(dict(profile.items()))

    def test_fabricated_edge(self, work_graph, example_profile):
        cfg, rec = work_graph
        bad = self.corrupt(example_profile)
        bad.add(BLPath(("A", "Z", "A")), 1)
        out = check_profile("work", cfg, rec, bad)
        assert PROF_EDGE_NOT_IN_GRAPH in out.codes()

    def test_path_through_recording_edge(self, work_graph, example_profile):
        cfg, rec = work_graph
        bad = self.corrupt(example_profile)
        # Extend a real path one edge past its recording edge: the
        # recording edge becomes interior and the new final edge is not
        # recording — both halves of the Ball-Larus shape break.
        base = next(
            p
            for p in bad.paths()
            if p.edges()[-1] in rec and cfg.succs(p.end)
        )
        succ = next(iter(cfg.succs(base.end)))
        bad.add(BLPath((*base.vertices, succ)), 1)
        out = check_profile("work", cfg, rec, bad)
        assert PROF_INTERIOR_RECORDING in out.codes()
        assert PROF_FINAL_NOT_RECORDING in out.codes()

    def test_truncated_path(self, work_graph, example_profile):
        cfg, rec = work_graph
        bad = self.corrupt(example_profile)
        base = next(p for p in bad.paths() if len(p.vertices) > 2)
        bad.add(BLPath(base.vertices[:-1]), 1)
        out = check_profile("work", cfg, rec, bad)
        assert PROF_FINAL_NOT_RECORDING in out.codes()
        # One path without a recording edge also desynchronizes the
        # path-count / recording-flow identity.
        assert PROF_PATH_SUM_MISMATCH in out.codes()

    def test_miscounted_path_breaks_kirchhoff(
        self, work_graph, example_profile
    ):
        cfg, rec = work_graph
        bad = self.corrupt(example_profile)
        # A non-cyclic path starting mid-routine: inflating it cannot be
        # absorbed by the entry-successor deficit or the exit inflow.
        entry_succs = set(cfg.succs(cfg.entry))
        victim = next(
            p
            for p in bad.paths()
            if p.start not in entry_succs and p.end != p.start
        )
        bad.add(victim, 7)
        out = check_profile("work", cfg, rec, bad)
        assert PROF_FLOW_IMBALANCE in out.codes()

    def test_block_count_mismatch(self, work_graph, example_profile):
        cfg, rec = work_graph
        counts = dict(example_profile.block_frequencies())
        block = next(iter(counts))
        counts[block] += 3
        out = check_profile("work", cfg, rec, example_profile, counts)
        assert PROF_BLOCK_COUNT_MISMATCH in out.codes()
        assert any(d.block == str(block) for d in out.errors)

    def test_clean_profile_is_clean(self, work_graph, example_profile):
        cfg, rec = work_graph
        out = check_profile(
            "work", cfg, rec, example_profile,
            example_profile.block_frequencies(),
        )
        assert not out.has_errors


# -- automaton family ------------------------------------------------------


class TestAutomatonMutations:
    def test_extra_trie_state_breaks_theorem2(self, work_graph, fresh_qa):
        cfg, rec = work_graph
        automaton = fresh_qa.automaton
        automaton.trie.insert([DOT, ("Z", "Z")])
        out = check_automaton("work", cfg, rec, automaton)
        assert AUT_THEOREM2_MISMATCH in out.codes()

    def test_interior_recording_hot_path(self, work_graph, fresh_qa):
        cfg, rec = work_graph
        automaton = fresh_qa.automaton
        # Smuggle in a "hot path" that runs through a recording edge (the
        # constructor rejects these, so corrupt the attribute directly).
        base = automaton.hot_paths[0]
        succ = next(iter(cfg.succs(base.end)))
        automaton.hot_paths = automaton.hot_paths + (
            BLPath((*base.vertices, succ)),
        )
        out = check_automaton("work", cfg, rec, automaton)
        assert AUT_INTERIOR_RECORDING in out.codes()

    def test_non_dot_root_child(self, work_graph, fresh_qa):
        cfg, rec = work_graph
        automaton = fresh_qa.automaton
        automaton.trie.insert([("A", "B")])
        out = check_automaton("work", cfg, rec, automaton)
        assert AUT_BAD_TRIE_SHAPE in out.codes()


# -- hot-path-graph family -------------------------------------------------


class TestHpgMutations:
    def test_dropped_recording_edge(self, fresh_qa):
        hpg = fresh_qa.hpg
        victim = next(iter(hpg.recording))
        hpg.recording = frozenset(set(hpg.recording) - {victim})
        out = check_hpg("work", fresh_qa)
        assert HPG_RECORDING_NOT_CARRIED in out.codes()

    def test_edge_to_wrong_state(self, fresh_qa):
        hpg = fresh_qa.hpg
        automaton = hpg.automaton
        u, w = next(
            (u, w)
            for u, w in hpg.cfg.edges
            if hpg.original_cfg.has_edge(u[0], w[0])
        )
        want = automaton.transition(u[1], (u[0], w[0]))
        wrong = next(s for s in automaton.states() if s != want)
        hpg.cfg.add_edge(u, (w[0], wrong))
        out = check_hpg("work", fresh_qa)
        assert HPG_STATE_INCONSISTENT in out.codes()

    def test_translated_profile_mass_lost(self, fresh_qa):
        profile = fresh_qa.hpg_profile
        profile.add(next(iter(profile.paths())), 5)
        out = check_hpg("work", fresh_qa)
        assert HPG_PROFILE_MASS_LOST in out.codes()


# -- dataflow family -------------------------------------------------------


class TestDataflowMutations:
    def test_truncated_solution_fails_residual(self, fresh_qa):
        baseline = fresh_qa.baseline
        # Simulate a corrupted cached solution: the entry's environment is
        # gone, so the solution is no longer a post-fixpoint.
        baseline.env_in.pop(baseline.view.cfg.entry, None)
        out = check_dataflow("work", fresh_qa)
        assert DF_RESIDUAL in out.codes()

    def test_overprecise_duplicate_fails_projection(self, fresh_qa):
        result = fresh_qa.hpg_analysis
        # Claim a constant the baseline never established, on every
        # duplicate of one original block: the folded solution no longer
        # refines the baseline (Theorem 1's conservation direction).
        target = next(
            v[0]
            for v in fresh_qa.hpg.cfg.vertices
            if isinstance(v, tuple) and fresh_qa.baseline.is_executable(v[0])
        )
        for v in list(result.env_in):
            if isinstance(v, tuple) and v[0] == target:
                env = result.env_in[v]
                if hasattr(env, "set"):
                    result.env_in[v] = env.set("zz_poisoned", 42)
        out = check_dataflow("work", fresh_qa)
        assert DF_PROJECTION_UNSOUND in out.codes()


# -- lint family -----------------------------------------------------------


def linty_function() -> Function:
    b = IRBuilder("f", ["n"])
    b.block("entry")
    b.assign("dead", 1)
    b.assign("dead", 2)
    b.binop("x", "add", Var("undefined_var"), 1)
    b.assign("c", 0)
    b.branch(Var("c"), "hot", "cold")
    b.block("hot")
    b.jump("done")
    b.block("cold")
    b.jump("done")
    b.block("done")
    b.ret("x")
    return b.finish()


class TestLintMutations:
    def test_all_four_lints_fire(self):
        out = lint_function(linty_function())
        codes = out.codes()
        assert LINT_DEAD_STORE in codes
        assert LINT_USE_BEFORE_DEF in codes
        assert LINT_CONSTANT_BRANCH in codes
        assert LINT_UNREACHABLE_UNDER_CONSTANTS in codes
        # Lints warn; they never fail a build on their own.
        assert not out.has_errors

    def test_lints_locate_their_findings(self):
        out = lint_function(linty_function())
        dead = next(d for d in out if d.code == LINT_DEAD_STORE)
        assert dead.function == "f"
        assert dead.block == "entry"


# -- path-lint family (LINT005-010) -----------------------------------------
#
# Each test seeds exactly one hot-path defect into a common loop scaffold:
# a routine that reads flag[i] each iteration and branches hot (flag == 0,
# ~90% of iterations) or cold.  The defect is invisible to the whole-CFG
# lints — the cold arm keeps every store live, every branch non-constant,
# every expression non-available — so only the profile-qualified analyzer
# can catch it, and a path lint that never fires would go unnoticed.


def _loop_module(body_builder) -> Module:
    """The scaffold: ``main(n)`` iterates ``body ... -> latch`` n times.

    ``body_builder(b)`` must emit a block named ``body`` and end every arm
    with a jump to ``latch``.
    """
    from repro.ir import ArrayDecl

    m = Module()
    m.add_array(ArrayDecl("flag", 256))
    b = IRBuilder("main", ["n"])
    b.block("entry")
    b.assign("i", 0)
    b.assign("s", 0)
    b.jump("head")
    b.block("head")
    b.binop("more", "lt", "i", "n")
    b.branch("more", "body", "done")
    body_builder(b)
    b.block("latch")
    b.binop("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("s")
    m.add_function(b.finish())
    return m


def _path_lint(module, n: int = 64, ca: float = 0.85):
    """Run the profiled pipeline + full lint battery on the scaffold.

    ``flag`` is 0 (hot) except every tenth slot from 9; ``min_mass=0`` so
    these tests assert pure *detection* — ranking and thresholds have their
    own tests in ``tests/test_analyze.py``.
    """
    from repro.analyze import lint_program

    flag = [1 if i % 10 == 9 else 0 for i in range(n)]
    findings = lint_program(
        module, [n], {"flag": flag}, ca, 0.95, min_mass=0.0
    )
    return {d.code for d in findings}, findings


class TestPathLintMutations:
    def test_hot_dead_store(self):
        from repro.analyze.passes import LINT_HOT_DEAD_STORE

        def body(b):
            b.block("body")
            b.binop("x", "mul", "i", 3)  # dead along the hot path
            b.load("f", "flag", "i")
            b.branch("f", "use", "skip")
            b.block("use")  # cold: keeps x live on the CFG
            b.binop("s", "add", "s", "x")
            b.jump("redef")
            b.block("skip")
            b.jump("redef")
            b.block("redef")
            b.binop("x", "add", "i", 1)
            b.binop("s", "add", "s", "x")
            b.jump("latch")

        codes, findings = _path_lint(_loop_module(body))
        assert LINT_DEAD_STORE not in codes  # the cold use hides it from CFG lint
        assert LINT_HOT_DEAD_STORE in codes
        d = next(f for f in findings if f.code == LINT_HOT_DEAD_STORE)
        assert d.block == "body"
        assert d.fix_hint is not None and d.fix_hint.transform == "dce"
        assert d.path_evidence is not None and d.path_evidence.mass > 0.5

    def test_hot_constant_branch(self):
        from repro.analyze.passes import LINT_HOT_CONSTANT_BRANCH

        def body(b):
            b.block("body")
            b.assign("c", 1)
            b.load("f", "flag", "i")
            b.branch("f", "setc", "skip")
            b.block("setc")  # cold: makes c non-constant at the merge
            b.assign("c", 0)
            b.jump("test")
            b.block("skip")
            b.jump("test")
            b.block("test")
            b.branch("c", "big", "small")  # constant on the hot copies
            b.block("big")
            b.binop("s", "add", "s", 2)
            b.jump("latch")
            b.block("small")
            b.binop("s", "add", "s", 1)
            b.jump("latch")

        codes, findings = _path_lint(_loop_module(body))
        assert LINT_CONSTANT_BRANCH not in codes
        assert LINT_HOT_CONSTANT_BRANCH in codes
        d = next(f for f in findings if f.code == LINT_HOT_CONSTANT_BRANCH)
        assert d.block == "test"
        assert d.fix_hint is not None and d.fix_hint.transform == "straighten"

    def test_hot_redundant_expression(self):
        from repro.analyze.passes import LINT_HOT_REDUNDANT_EXPR

        def body(b):
            b.block("body")
            b.binop("a", "add", "n", 7)
            b.load("f", "flag", "i")
            b.branch("f", "cold", "hotc")
            b.block("hotc")  # hot: computes a * 9 before the merge
            b.binop("u", "mul", "a", 9)
            b.binop("s", "add", "s", "u")
            b.jump("join")
            b.block("cold")
            b.binop("s", "add", "s", 1)
            b.jump("join")
            b.block("join")
            b.binop("w", "mul", "a", 9)  # recomputation, hot paths only
            b.binop("s", "add", "s", "w")
            b.jump("latch")

        codes, findings = _path_lint(_loop_module(body))
        assert LINT_HOT_REDUNDANT_EXPR in codes
        d = next(
            f
            for f in findings
            if f.code == LINT_HOT_REDUNDANT_EXPR and f.block == "join"
        )
        assert d.path_evidence is not None and d.path_evidence.sharper

    def test_hot_initialized_use(self):
        from repro.analyze.passes import LINT_HOT_INITIALIZED

        def body(b):
            b.block("body")
            b.load("f", "flag", "i")
            b.branch("f", "cold", "hotc")
            b.block("hotc")  # hot: the only arm assigning t
            b.binop("t", "add", "i", 2)
            b.jump("join")
            b.block("cold")
            b.jump("join")
            b.block("join")
            b.binop("s", "add", "s", "t")  # maybe-uninitialized on the CFG
            b.jump("latch")

        codes, findings = _path_lint(_loop_module(body))
        assert LINT_USE_BEFORE_DEF not in codes  # the hot def reaches the use
        assert LINT_HOT_INITIALIZED in codes
        d = next(f for f in findings if f.code == LINT_HOT_INITIALIZED)
        assert d.block == "join"
        from repro.checks import Severity

        assert d.severity == Severity.INFO  # demoted: proven initialized when hot

    def test_hot_copy_propagation(self):
        from repro.analyze.passes import LINT_HOT_COPY

        def body(b):
            b.block("body")
            b.binop("v", "add", "i", 5)
            b.load("f", "flag", "i")
            b.branch("f", "cold", "hotc")
            b.block("hotc")  # hot: y is a pure copy of v
            b.assign("y", "v")
            b.jump("join")
            b.block("cold")
            b.binop("y", "add", "v", 1)
            b.jump("join")
            b.block("join")
            b.binop("s", "add", "s", "y")  # y replaceable by v when hot
            b.jump("latch")

        codes, findings = _path_lint(_loop_module(body))
        assert LINT_HOT_COPY in codes
        d = next(f for f in findings if f.code == LINT_HOT_COPY)
        assert d.block == "join"
        assert d.fix_hint is not None and d.fix_hint.transform == "copy_prop"

    def test_qualified_constant_sharpening(self, example_module):
        # The paper's own Figure 5: x = a + b in block H is non-constant
        # under iterative Wegman-Zadek but constant (6/5/4) on each hot
        # duplicate of H — the flagship LINT010 finding.
        from repro.analyze import lint_program
        from repro.analyze.passes import LINT_HOT_CONSTANT_SITE
        from repro.workloads.running_example import training_run_inputs

        n, inputs = training_run_inputs()
        findings = lint_program(example_module, [n], inputs, 0.97, 0.95)
        sites = [f for f in findings if f.code == LINT_HOT_CONSTANT_SITE]
        assert sites, "LINT010 must fire on the running example"
        assert any(
            f.function == "work" and f.block == "H" for f in sites
        )
        d = sites[0]
        assert d.fix_hint is not None and d.fix_hint.transform == "const_fold"
        assert d.path_evidence is not None and d.path_evidence.sharper
