"""Function-granular incremental re-analysis: invalidation matrix,
differential reports, daemon parity, incremental sweeps.

The contract under test is the acceptance criterion of the incremental
PR: after an edit to one function, re-analysis serves every *other*
function's qualified pipeline and lint artifacts warm — asserted
directly against :class:`~repro.pipeline.cache.CacheStats` — and the
differential report (new / fixed / unchanged findings, per-function
hit/recompute ledger) is deterministic outside ``timings``, so the
daemon's ``/v1/diff`` is bit-identical to a direct ``execute_diff``.
"""

from __future__ import annotations

import dataclasses
import json
import threading

import pytest

from repro.evaluation import DEFAULT_CA, DEFAULT_CR
from repro.evaluation.harness import Workload
from repro.frontend import (
    changed_functions,
    compile_program,
    function_fingerprints,
    module_fingerprint,
)
from repro.pipeline import (
    DIFF_SCHEMA,
    KIND_LINT,
    KIND_MODULE,
    KIND_QUALIFIED,
    KIND_REF_RUN,
    KIND_SWEEP_CELL,
    KIND_SWEEP_SUMMARY,
    KIND_TRAIN_RUN,
    ArtifactCache,
    IncrementalSession,
    ParallelDriver,
    diff_workloads,
    edited_workload,
    make_run,
    render_diff_text,
    seeded_edit,
)
from repro.service import (
    AnalysisService,
    DiffRequest,
    ServiceClient,
    comparable_payload,
    execute_diff,
    make_server,
)
from repro.workloads import get_workload

WORKLOAD = "compress95"
FUNCTIONS = ("hash_probe", "compress", "main")
MIN_MASS = 0.5


def _analyze(workload: Workload, cache: ArtifactCache):
    """Drive the full per-function pipeline of one version."""
    run = make_run(workload, cache)
    run.qualified(DEFAULT_CA, DEFAULT_CR)
    run.lint(DEFAULT_CA, DEFAULT_CR, MIN_MASS)
    return run


def _delta(cache: ArtifactCache, fn):
    """(result, cache-stats delta) of running ``fn``."""
    before = cache.stats_snapshot()
    out = fn()
    return out, cache.stats_snapshot().diff(before)


# -- fingerprints ----------------------------------------------------------


def test_function_fingerprints_are_whitespace_insensitive():
    src = get_workload(WORKLOAD).source
    m1 = compile_program(src)
    m2 = compile_program(src.replace("\n", " \n"))
    assert function_fingerprints(m1) == function_fingerprints(m2)
    assert module_fingerprint(m1) == module_fingerprint(m2)


def test_changed_functions_localizes_a_seeded_edit():
    src = get_workload(WORKLOAD).source
    old = compile_program(src)
    new = compile_program(seeded_edit(src, "compress"))
    changed, added, removed, unchanged = changed_functions(old, new)
    assert changed == ("compress",)
    assert added == () and removed == ()
    assert set(unchanged) == {"hash_probe", "main"}


def test_seeded_edit_requires_a_matching_function():
    with pytest.raises(ValueError):
        seeded_edit("func f(n) { return n; }", "missing")


# -- invalidation matrix ---------------------------------------------------
#
# Each case runs the base version cold into a fresh in-memory cache, then
# a variant, and asserts *exactly* which cache kinds hit vs. recompute.


def test_matrix_edit_one_function_recomputes_only_that_function():
    cache = ArtifactCache(None)
    base = get_workload(WORKLOAD)
    _analyze(base, cache)
    _, d = _delta(cache, lambda: _analyze(edited_workload(base), cache))
    n = len(FUNCTIONS)
    # New source text -> recompile; new IR -> re-profile (the runs execute
    # the edited module)...
    assert d.misses.get(KIND_MODULE, 0) == 1
    assert d.misses.get(KIND_TRAIN_RUN, 0) == 1
    assert d.misses.get(KIND_REF_RUN, 0) == 1
    # ...but the edit is function-local and flow-preserving: exactly one
    # function's qualified pipeline and lint recompute, the rest are warm.
    assert d.misses.get(KIND_QUALIFIED, 0) == 1
    assert d.hits.get(KIND_QUALIFIED, 0) == n - 1
    assert d.misses.get(KIND_LINT, 0) == 1
    assert d.hits.get(KIND_LINT, 0) == n - 1


def test_matrix_edit_inputs_only_reprofiles_without_recompiling():
    cache = ArtifactCache(None)
    base = get_workload(WORKLOAD)
    run1 = _analyze(base, cache)
    inputs = dict(base.train_inputs)
    inputs["input"] = tuple((3 * i) % 251 for i in range(len(inputs["input"])))
    run2, d = _delta(
        cache,
        lambda: _analyze(dataclasses.replace(base, train_inputs=inputs), cache),
    )
    # Same program: the module is served warm...
    assert d.misses.get(KIND_MODULE, 0) == 0
    assert d.hits.get(KIND_MODULE, 0) == 1
    # ...new training data re-profiles train but not ref...
    assert d.misses.get(KIND_TRAIN_RUN, 0) == 1
    assert d.misses.get(KIND_REF_RUN, 0) == 0
    assert d.hits.get(KIND_REF_RUN, 0) == 1
    # ...and qualified/lint recompute exactly for the functions whose
    # training profile actually changed.
    moved = sum(
        run1.profile_fingerprint(name) != run2.profile_fingerprint(name)
        for name in FUNCTIONS
    )
    # The new byte stream changes hash_probe's and compress's path mix but
    # not main's — main stays warm even though the training data moved.
    assert moved == 2
    assert run1.profile_fingerprint("main") == run2.profile_fingerprint("main")
    assert d.misses.get(KIND_QUALIFIED, 0) == moved
    assert d.hits.get(KIND_QUALIFIED, 0) == len(FUNCTIONS) - moved
    assert d.misses.get(KIND_LINT, 0) == moved
    assert d.hits.get(KIND_LINT, 0) == len(FUNCTIONS) - moved


def test_matrix_edit_ca_only_requalifies_without_reprofiling():
    cache = ArtifactCache(None)
    base = get_workload(WORKLOAD)
    _analyze(base, cache)

    def requalify():
        run = make_run(base, cache)
        run.qualified(0.875, DEFAULT_CR)
        run.lint(0.875, DEFAULT_CR, MIN_MASS)
        return run

    _, d = _delta(cache, requalify)
    n = len(FUNCTIONS)
    # Same source, same data: compile and both profiling runs are warm.
    assert d.misses.get(KIND_MODULE, 0) == 0
    assert d.misses.get(KIND_TRAIN_RUN, 0) == 0
    assert d.misses.get(KIND_REF_RUN, 0) == 0
    # A new coverage level re-keys every function's qualified pipeline.
    assert d.misses.get(KIND_QUALIFIED, 0) == n
    assert d.misses.get(KIND_LINT, 0) == n


TINY_SOURCE = """
func helper(n) {
  var x = n + 1;
  return x;
}

func main(n) {
  var i = 0;
  var acc = 0;
  while (i < n) {
    if (i < 3) {
      acc = acc + i;
    } else {
      acc = acc + 1;
    }
    i = i + 1;
  }
  return acc;
}
"""


def _tiny(source: str) -> Workload:
    return Workload(
        name="tiny",
        source=source,
        train_args=(8,),
        train_inputs={},
        ref_args=(12,),
        ref_inputs={},
        description="two-function rename/whitespace fixture",
    )


def test_matrix_rename_function_recomputes_only_the_renamed_one():
    cache = ArtifactCache(None)
    _analyze(_tiny(TINY_SOURCE), cache)
    renamed = TINY_SOURCE.replace("helper", "helper2")
    run2, d = _delta(cache, lambda: _analyze(_tiny(renamed), cache))
    changed, added, removed, unchanged = changed_functions(
        compile_program(TINY_SOURCE), run2.module
    )
    assert added == ("helper2",) and removed == ("helper",)
    assert changed == () and unchanged == ("main",)
    # Renames are identity changes: the renamed function recomputes (its
    # fingerprint covers its name), the untouched one stays warm.
    assert d.misses.get(KIND_QUALIFIED, 0) == 1
    assert d.hits.get(KIND_QUALIFIED, 0) == 1
    assert d.misses.get(KIND_LINT, 0) == 1
    assert d.hits.get(KIND_LINT, 0) == 1


def test_matrix_whitespace_edit_recompiles_but_reuses_everything_else():
    cache = ArtifactCache(None)
    base = _tiny(TINY_SOURCE)
    _analyze(base, cache)
    _, d = _delta(
        cache, lambda: _analyze(_tiny(TINY_SOURCE.replace("\n", " \n")), cache)
    )
    n = 2
    # The module keys on raw source text, so a whitespace edit recompiles
    # (cheap)...
    assert d.misses.get(KIND_MODULE, 0) == 1
    # ...but the lowered IR is identical, so nothing downstream moves:
    # no re-profile, no re-qualify, no re-lint.
    assert d.misses.get(KIND_TRAIN_RUN, 0) == 0
    assert d.hits.get(KIND_TRAIN_RUN, 0) == 1
    assert d.misses.get(KIND_REF_RUN, 0) == 0
    assert d.hits.get(KIND_REF_RUN, 0) == 1
    assert d.misses.get(KIND_QUALIFIED, 0) == 0
    assert d.hits.get(KIND_QUALIFIED, 0) == n
    assert d.misses.get(KIND_LINT, 0) == 0
    assert d.hits.get(KIND_LINT, 0) == n


# -- the incremental session and its report --------------------------------


def test_session_recomputes_only_the_edited_function():
    cache = ArtifactCache(None)
    base = get_workload(WORKLOAD)
    session = IncrementalSession(base, edited_workload(base), cache)
    report = session.report()
    n = len(FUNCTIONS)
    # Acceptance criterion: old runs cold (n misses), the new version
    # misses only the edited function and hits the other n - 1.
    stats = cache.stats
    assert stats.misses.get(KIND_QUALIFIED, 0) == n + 1
    assert stats.hits.get(KIND_QUALIFIED, 0) == n - 1
    assert stats.misses.get(KIND_LINT, 0) == n + 1
    assert stats.hits.get(KIND_LINT, 0) == n - 1
    # The observed traffic is reported (non-deterministically) under
    # timings; the deterministic ledger must agree with it.
    assert report["timings"]["cache"]["misses"][KIND_QUALIFIED] == n + 1


def test_diff_report_for_a_seeded_edit():
    base = get_workload(WORKLOAD)
    report = diff_workloads(base, edited_workload(base), ArtifactCache(None))
    assert report["schema"] == DIFF_SCHEMA
    assert report["workload"] == WORKLOAD
    # The seeded edit touches the first function only.
    assert report["functions"]["changed"] == ["hash_probe"]
    assert report["functions"]["added"] == []
    assert report["functions"]["removed"] == []
    ledger = report["ledger"]
    assert ledger["stages"]["module"] == "recompute"
    assert ledger["stages"]["train"] == "recompute"
    assert ledger["functions"]["hash_probe"] == {
        "qualified": "recompute",
        "lint": "recompute",
    }
    for name in ("compress", "main"):
        assert ledger["functions"][name] == {"qualified": "hit", "lint": "hit"}
    # The injected declaration is a dead store: it surfaces as a *new*
    # finding, nothing is fixed, prior findings are unchanged.
    new_codes = [d["code"] for d in report["findings"]["new"]]
    assert "LINT002" in new_codes
    assert report["findings"]["fixed"] == []
    # The report is JSON end to end (CLI --json, daemon result payload).
    json.dumps(report)
    text = render_diff_text(report)
    assert "1 changed" in text and "hash_probe" in text


def test_diff_report_is_deterministic_across_fresh_caches():
    base = get_workload(WORKLOAD)
    new = edited_workload(base)
    r1 = diff_workloads(base, new, ArtifactCache(None))
    r2 = diff_workloads(base, new, ArtifactCache(None))
    assert comparable_payload(r1) == comparable_payload(r2)


def test_reverse_diff_reports_the_finding_as_fixed():
    base = get_workload(WORKLOAD)
    new = edited_workload(base)
    cache = ArtifactCache(None)
    forward = diff_workloads(base, new, cache)
    reverse = diff_workloads(new, base, cache)
    assert reverse["findings"]["fixed"] == forward["findings"]["new"]
    assert reverse["findings"]["new"] == forward["findings"]["fixed"]
    assert reverse["functions"]["changed"] == forward["functions"]["changed"]


def test_whitespace_diff_is_all_warm():
    base = _tiny(TINY_SOURCE)
    new = _tiny(TINY_SOURCE.replace("\n", " \n"))
    report = diff_workloads(base, new, ArtifactCache(None))
    assert report["functions"]["changed"] == []
    assert report["ledger"]["stages"] == {
        "module": "recompute",  # raw text changed
        "train": "hit",
        "ref": "hit",
    }
    assert all(
        states == {"qualified": "hit", "lint": "hit"}
        for states in report["ledger"]["functions"].values()
    )
    assert report["findings"]["new"] == []
    assert report["findings"]["fixed"] == []


# -- daemon parity ---------------------------------------------------------


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One daemon on an ephemeral port with a disk cache."""
    cache_dir = tmp_path_factory.mktemp("diff-cache")
    service = AnalysisService(jobs=2, cache_dir=str(cache_dir))
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.shutdown()
    thread.join(timeout=10)


def test_daemon_diff_is_bit_identical_to_direct(served):
    _, client = served
    client.wait_ready(timeout=10)
    request = DiffRequest(target="gen-small", seed_edit=True)
    direct = execute_diff(request)
    via_daemon = client.diff(request)
    assert comparable_payload(via_daemon) == comparable_payload(direct)
    assert via_daemon["kind"] == "diff"
    assert via_daemon["report"]["schema"] == DIFF_SCHEMA
    # The nested report carries no wall-clock state at all: the cache-fed
    # daemon run and the cold direct run agree on every byte of it.
    assert "timings" not in via_daemon["report"]


def test_daemon_coalesces_identical_diff_submissions(served):
    _, client = served
    request = DiffRequest(target="gen-small", seed_edit=True, ca=0.875)
    first = client.submit_diff(request)
    second = client.submit_diff(request)
    results = [client.wait(sub["job"])["result"] for sub in (first, second)]
    assert comparable_payload(results[0]) == comparable_payload(results[1])


def test_diff_request_validation():
    with pytest.raises(ValueError):
        DiffRequest(target="gen-small")  # no new version at all
    with pytest.raises(ValueError):
        DiffRequest(
            target="gen-small", seed_edit=True, new_source="func main() {}"
        )  # both new versions
    with pytest.raises(ValueError):
        DiffRequest(source="func main(n) { return n; }")  # no new version
    round_tripped = DiffRequest.from_dict(
        DiffRequest(target="gen-small", seed_edit=True).to_dict()
    )
    assert round_tripped == DiffRequest(target="gen-small", seed_edit=True)


# -- incremental sweeps ----------------------------------------------------


def test_incremental_sweep_matches_plain_and_serves_warm(tmp_path):
    cache_dir = str(tmp_path / "sweep-cache")
    plain = ParallelDriver(jobs=1, cache_dir=cache_dir, lint=True).sweep(
        [WORKLOAD], [DEFAULT_CA]
    )
    driver = ParallelDriver(
        jobs=1, cache_dir=cache_dir, lint=True, incremental=True
    )
    cold = driver.sweep([WORKLOAD], [DEFAULT_CA])
    assert cold.artifacts() == plain.artifacts()
    warm = driver.sweep([WORKLOAD], [DEFAULT_CA])
    assert warm.artifacts() == plain.artifacts()
    # Lint findings survive cell memoization.
    assert [d.to_dict() for d in warm.lint_findings[WORKLOAD]] == [
        d.to_dict() for d in plain.lint_findings[WORKLOAD]
    ]
    # The second incremental sweep is served entirely from the memoized
    # sweep cells: one miss (cold) then one hit (warm) per kind.
    from repro.pipeline.driver import _obtain_cache

    stats = _obtain_cache(WORKLOAD, cache_dir).stats
    assert stats.misses.get(KIND_SWEEP_CELL, 0) == 1
    assert stats.hits.get(KIND_SWEEP_CELL, 0) >= 1
    assert stats.misses.get(KIND_SWEEP_SUMMARY, 0) == 1
    assert stats.hits.get(KIND_SWEEP_SUMMARY, 0) >= 1
