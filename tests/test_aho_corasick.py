"""The general Aho–Corasick automaton, and an executable proof of Theorem 2:
on trimmed Ball–Larus keyword sets its transition function coincides with
the trivial-failure qualification automaton."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automaton import AhoCorasick, DOT, QualificationAutomaton
from repro.interp import Interpreter
from repro.profiles import recording_edges, select_hot_paths
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)

from conftest import random_cfgs, random_walks


class TestClassicMatching:
    def test_textbook_example(self):
        """The classic {he, she, his, hers} keyword set."""
        ac = AhoCorasick(["he", "she", "his", "hers"], alphabet="hiser")
        hits = ac.matches("ushers")
        ends = sorted(i for i, _ in hits)
        # "she" ends at 4, "he" (via failure of "she") at 4, "hers" at 6.
        assert 4 in ends and 6 in ends

    def test_overlapping_keywords(self):
        ac = AhoCorasick(["aa", "aaa"], alphabet="a")
        hits = ac.matches("aaaa")
        assert [i for i, _ in hits] == [2, 3, 4]

    def test_no_match(self):
        ac = AhoCorasick(["abc"], alphabet="abcx")
        assert ac.matches("xxab") == []

    def test_failure_links_reset_correctly(self):
        # After matching the prefix "ab" of "abd", input "c" must recover
        # the keyword "bc" via the failure link of the "ab" state.
        ac = AhoCorasick(["abd", "bc"], alphabet="abcd")
        hits = ac.matches("abc")
        assert [i for i, _ in hits] == [3]

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_equal_naive_scan(self, data):
        alphabet = "ab"
        keywords = data.draw(
            st.lists(
                st.text(alphabet=alphabet, min_size=1, max_size=4),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        text = data.draw(st.text(alphabet=alphabet, max_size=20))
        ac = AhoCorasick(keywords, alphabet)
        got = sorted({i for i, _ in ac.matches(text)})
        expected = sorted(
            {
                i + len(k)
                for k in keywords
                for i in range(len(text))
                if text.startswith(k, i)
            }
        )
        assert got == expected


class TestTheorem2:
    """The paper's Theorem 2, executed: for trimmed Ball–Larus keywords, the
    general failure function degenerates to (q• on recording, qε otherwise),
    i.e. the two automata have identical transition functions."""

    def _automata(self, cfg, hot_paths, recording):
        qual = QualificationAutomaton(recording, hot_paths)
        keywords = [[DOT]] + [
            [DOT, *QualificationAutomaton.trim(p)] for p in hot_paths
        ]
        alphabet = [DOT] + list(cfg.edges)
        general = AhoCorasick(keywords, alphabet)
        return qual, general

    def _assert_equal_transitions(self, cfg, recording, qual, general):
        assert qual.num_states == general.num_states
        for state in qual.states():
            for edge in cfg.edges:
                letter = DOT if edge in recording else edge
                assert qual.transition(state, edge) == general.transition(
                    state, letter
                ), (state, edge)

    def test_on_the_running_example(self):
        from repro.ir import Cfg

        module = running_example_module()
        n, inputs = training_run_inputs()
        run = Interpreter(module).run([n], inputs)
        profile = run.profiles["work"]
        fn = module.function("work")
        cfg = Cfg.from_function(fn)
        recording = recording_edges(cfg)
        sizes = {label: b.size for label, b in fn.blocks.items()}
        hot = select_hot_paths(profile, sizes, 1.0)
        qual, general = self._automata(cfg, hot, recording)
        self._assert_equal_transitions(cfg, recording, qual, general)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_on_random_graphs(self, data):
        from repro.profiles import PathProfile, split_trace

        cfg = data.draw(random_cfgs(max_blocks=6))
        recording = recording_edges(cfg)
        profile = PathProfile()
        for _ in range(data.draw(st.integers(1, 3))):
            walk = data.draw(random_walks(cfg))
            for p in split_trace(walk, recording):
                profile.add(p)
        hot = select_hot_paths(profile, {v: 1 for v in cfg.vertices}, 1.0)
        qual, general = self._automata(cfg, hot, recording)
        self._assert_equal_transitions(cfg, recording, qual, general)

    def test_failure_links_all_point_to_root(self):
        """Theorem 2's proof core: no proper suffix of a trimmed path is a
        keyword prefix, so every failure link is trivial."""
        from repro.ir import Cfg

        module = running_example_module()
        n, inputs = training_run_inputs()
        run = Interpreter(module).run([n], inputs)
        fn = module.function("work")
        cfg = Cfg.from_function(fn)
        recording = recording_edges(cfg)
        sizes = {label: b.size for label, b in fn.blocks.items()}
        hot = select_hot_paths(run.profiles["work"], sizes, 1.0)
        _, general = self._automata(cfg, hot, recording)
        for state in range(1, general.num_states):
            assert general.failure[state] == general.root
