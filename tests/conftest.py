"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.evaluation.harness import WorkloadRun
from repro.interp import Interpreter
from repro.ir.cfg import Cfg
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)
from repro.workloads.spec import get_workload


# -- running example -----------------------------------------------------


@pytest.fixture(scope="session")
def example_module():
    return running_example_module()


@pytest.fixture(scope="session")
def example_run(example_module):
    """A profiled training run of the running example (both profilers)."""
    n, inputs = training_run_inputs()
    interp = Interpreter(example_module, profile_mode="both")
    return interp.run([n], inputs)


@pytest.fixture(scope="session")
def example_profile(example_run):
    """The Figure 2 path profile of the ``work`` routine."""
    return example_run.profiles["work"]


@pytest.fixture(scope="session")
def example_qualified(example_module, example_profile):
    """Full pipeline at CA = 1 on the running example."""
    from repro.core import run_qualified

    return run_qualified(example_module.function("work"), example_profile, ca=1.0)


# -- workload runs (session-cached; they are the expensive fixtures) ---------


@pytest.fixture(scope="session")
def compress_run():
    return WorkloadRun(get_workload("compress95"))


@pytest.fixture(scope="session")
def vortex_run():
    return WorkloadRun(get_workload("vortex95"))


# -- hypothesis strategies ------------------------------------------------


@st.composite
def random_cfgs(draw, max_blocks: int = 8):
    """A random, connected Cfg over string vertices ``b0..bN`` with entry
    edge, exit edges, and optional back edges.

    Every vertex is reachable from the entry and reaches the exit, so the
    graph is a plausible routine CFG for profiling algorithms.
    """
    n = draw(st.integers(min_value=1, max_value=max_blocks))
    names = [f"b{i}" for i in range(n)]
    cfg = Cfg()
    cfg.add_edge(cfg.entry, names[0])
    # Forward edges keep the skeleton acyclic and connected.
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        cfg.add_edge(names[parent], names[i])
    # Extra forward edges.
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a < b:
            cfg.add_edge(names[a], names[b])
    # Back edges (cycles).
    back = draw(st.integers(min_value=0, max_value=2))
    for _ in range(back):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=a))
        cfg.add_edge(names[a], names[b])
    # Exit edges: every vertex needs a *forward* way out, or a walk could be
    # trapped in a cycle; give vertices without a higher-indexed successor an
    # edge to the exit.
    index = {name: i for i, name in enumerate(names)}
    for name in names:
        forward = [
            s
            for s in cfg.succs(name)
            if s == cfg.exit or index.get(s, -1) > index[name]
        ]
        if not forward:
            cfg.add_edge(name, cfg.exit)
    if draw(st.booleans()):
        v = names[draw(st.integers(min_value=0, max_value=n - 1))]
        cfg.add_edge(v, cfg.exit)
    return cfg


@st.composite
def random_walks(draw, cfg: Cfg, max_steps: int = 40):
    """A random entry-to-exit walk through ``cfg`` (a plausible execution
    trace).  Biased toward the exit so walks terminate."""
    trace = [cfg.entry]
    current = cfg.entry
    steps = 0
    while current != cfg.exit:
        succs = list(cfg.succs(current))
        assert succs, f"vertex {current} has no successors"
        if steps >= max_steps and cfg.exit in succs:
            nxt = cfg.exit
        else:
            nxt = succs[draw(st.integers(min_value=0, max_value=len(succs) - 1))]
        trace.append(nxt)
        current = nxt
        steps += 1
        if steps > max_steps * 4:
            # Force termination: follow any path to the exit greedily.
            current = _force_exit(cfg, current, trace)
    return trace


def _force_exit(cfg: Cfg, current, trace):
    # BFS parent map toward the exit.
    from collections import deque

    parents = {current: None}
    queue = deque([current])
    while queue:
        v = queue.popleft()
        if v == cfg.exit:
            path = []
            while v is not None:
                path.append(v)
                v = parents[v]
            path.reverse()
            trace.extend(path[1:])
            return cfg.exit
        for s in cfg.succs(v):
            if s not in parents:
                parents[s] = v
                queue.append(s)
    raise AssertionError("exit unreachable")
