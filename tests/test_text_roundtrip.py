"""Property test: textual IR round-trips for arbitrary generated modules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    ArrayDecl,
    IRBuilder,
    Module,
    parse_module,
)
from repro.ir.ops import BINOPS, UNOPS

_VARS = ["x", "y", "z", "acc", "%t1", "%t2", "p0"]
_ARRAYS = ["mem", "buf"]


@st.composite
def random_modules(draw):
    """A random, label-consistent module exercising every instruction kind."""
    module_arrays = [
        ArrayDecl(
            name,
            draw(st.integers(1, 16)),
            tuple(
                draw(
                    st.lists(st.integers(-99, 99), max_size=4)
                )
            ),
        )
        for name in _ARRAYS
    ]

    n_blocks = draw(st.integers(1, 5))
    labels = [f"b{i}" for i in range(n_blocks)]

    def operand():
        if draw(st.booleans()):
            return draw(st.integers(-100, 100))
        return draw(st.sampled_from(_VARS))

    b = IRBuilder("main", ["p0"])
    for i, label in enumerate(labels):
        b.block(label)
        for _ in range(draw(st.integers(0, 4))):
            kind = draw(
                st.sampled_from(
                    ["assign", "binop", "unop", "load", "store", "call", "print"]
                )
            )
            dest = draw(st.sampled_from(_VARS))
            if kind == "assign":
                b.assign(dest, operand())
            elif kind == "binop":
                op = draw(st.sampled_from(sorted(BINOPS)))
                b.binop(dest, op, operand(), operand())
            elif kind == "unop":
                op = draw(st.sampled_from(sorted(UNOPS)))
                b.unop(dest, op, operand())
            elif kind == "load":
                b.load(dest, draw(st.sampled_from(_ARRAYS)), operand())
            elif kind == "store":
                b.store(draw(st.sampled_from(_ARRAYS)), operand(), operand())
            elif kind == "call":
                n_args = draw(st.integers(0, 3))
                callee = draw(st.sampled_from(["main", "abs"]))
                target = dest if draw(st.booleans()) else None
                b.call(target, callee, *[operand() for _ in range(n_args)])
            else:
                n_args = draw(st.integers(1, 3))
                b.emit_print(*[operand() for _ in range(n_args)])
        # Terminator: jump/branch forward (or anywhere), or return.
        choice = draw(st.sampled_from(["jump", "branch", "ret", "ret_void"]))
        if choice == "jump":
            b.jump(draw(st.sampled_from(labels)))
        elif choice == "branch":
            if len(labels) < 2:
                b.ret(operand())
            else:
                t = draw(st.sampled_from(labels))
                f = draw(st.sampled_from([l for l in labels if l != t]))
                b.branch(operand(), t, f)
        elif choice == "ret":
            b.ret(operand())
        else:
            b.ret()

    module = Module()
    for decl in module_arrays:
        module.add_array(decl)
    module.add_function(b.finish())
    return module


@given(random_modules())
@settings(max_examples=120, deadline=None)
def test_text_round_trip_is_identity(module):
    text = str(module)
    reparsed = parse_module(text)
    assert str(reparsed) == text
    # And a second round trip is stable too.
    assert str(parse_module(str(reparsed))) == text


@given(random_modules())
@settings(max_examples=60, deadline=None)
def test_round_trip_preserves_structure(module):
    reparsed = parse_module(str(module))
    fn = module.function("main")
    fn2 = reparsed.function("main")
    assert list(fn.blocks) == list(fn2.blocks)
    assert fn.params == fn2.params
    for label in fn.blocks:
        a, b = fn.blocks[label], fn2.blocks[label]
        assert len(a.instrs) == len(b.instrs)
        assert type(a.terminator) is type(b.terminator)
        for ia, ib in zip(a.instrs, b.instrs):
            assert type(ia) is type(ib)
            assert ia.dest == ib.dest
            assert ia.uses() == ib.uses()
    for name in module.arrays:
        assert module.arrays[name].size == reparsed.arrays[name].size
        assert module.arrays[name].init == tuple(reparsed.arrays[name].init)
