"""Extra recording edges (§2.3: "Additional edges may also be designated
recording edges") — shorter paths, same machinery."""

from repro.automaton import QualificationAutomaton
from repro.core import run_qualified, trace, translate_profile
from repro.ir import Cfg, ENTRY, EXIT, IRBuilder
from repro.profiles import (
    BallLarusNumbering,
    PathProfile,
    profile_from_traces,
    recording_edges,
    select_hot_paths,
    split_trace,
)


def diamond_loop_cfg() -> Cfg:
    return Cfg(
        edges=[
            (ENTRY, "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
            ("d", "a"),
            ("d", EXIT),
        ]
    )


TRACE = [ENTRY, "a", "b", "d", "a", "c", "d", EXIT]


class TestExtraRecordingEdges:
    def test_paths_get_shorter(self):
        cfg = diamond_loop_cfg()
        minimal = recording_edges(cfg)
        extra = recording_edges(cfg, extra=[("a", "b"), ("a", "c")])
        long_paths = split_trace(TRACE, minimal)
        short_paths = split_trace(TRACE, extra)
        assert len(short_paths) > len(long_paths)
        assert max(len(p) for p in short_paths) < max(
            len(p) for p in long_paths
        )

    def test_interior_partition_still_exact(self):
        cfg = diamond_loop_cfg()
        extra = recording_edges(cfg, extra=[("a", "b")])
        paths = split_trace(TRACE, extra)
        interiors = [v for p in paths for v in p.interior()]
        assert interiors == TRACE[1:-1]

    def test_numbering_respects_extra_edges(self):
        cfg = diamond_loop_cfg()
        extra = recording_edges(cfg, extra=[("a", "b")])
        numbering = BallLarusNumbering(cfg, extra)
        for start in numbering.start_vertices:
            for pid in range(numbering.num_paths_from(start)):
                path = numbering.regenerate(start, pid)
                assert numbering.path_id(path) == (start, pid)
                assert path.edges()[-1] in extra

    def test_full_pipeline_with_extra_recording_edges(
        self, example_module, example_run
    ):
        """run_qualified accepts a custom recording set; tracing, profile
        translation and reduction all stay consistent."""
        fn = example_module.function("work")
        cfg = Cfg.from_function(fn)
        extra = recording_edges(cfg, extra=[("E", "F")])

        # Re-profile the training run against the richer recording set by
        # splitting the original profile's paths further.
        base_profile = example_run.profiles["work"]
        refined = PathProfile()
        for path, count in base_profile.items():
            for piece in _resplit(path, extra):
                refined.add(piece, count)

        qa = run_qualified(fn, refined, ca=1.0, recording=extra)
        assert qa.traced
        assert qa.hpg_profile.total_count == refined.total_count
        # Shorter hot paths => every traced recording edge maps to the set.
        for (u, v) in qa.hpg.recording:
            assert (u[0], v[0]) in extra

    def test_everything_recording_degenerates_to_edge_profiling(self):
        """With *every* edge recording, Ball-Larus paths are single edges —
        the profile collapses to an edge profile."""
        cfg = diamond_loop_cfg()
        all_edges = recording_edges(cfg, extra=cfg.edges)
        paths = split_trace(TRACE, all_edges)
        assert all(len(p) == 2 for p in paths)
        profile = profile_from_traces([TRACE], all_edges)
        assert profile.edge_frequencies() == {
            e: 1 for e in zip(TRACE[1:], TRACE[2:])
        } | {(TRACE[1], TRACE[2]): 1}


def _resplit(path, recording):
    """Split a BL path further at newly-recording interior edges."""
    return split_trace_like(path.vertices, recording)


def split_trace_like(vertices, recording):
    from repro.profiles import BLPath

    pieces = []
    current = [vertices[0]]
    for u, v in zip(vertices, vertices[1:]):
        current.append(v)
        if (u, v) in recording:
            pieces.append(BLPath(tuple(current)))
            current = [v]
    assert len(current) == 1, "path must end on a recording edge"
    return pieces
