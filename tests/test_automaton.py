"""Tests for the retrieval tree, the qualification automaton (Theorem 2),
and partition refinement (Hopcroft vs the Moore oracle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automaton import (
    DOT,
    QualificationAutomaton,
    Trie,
    hopcroft_refine,
    moore_refine,
    quotient_map,
)
from repro.ir import Cfg, ENTRY, EXIT
from repro.profiles import BLPath, recording_edges

from conftest import random_cfgs


class TestTrie:
    def test_insert_and_contains(self):
        t = Trie()
        t.insert("abc")
        t.insert("abd")
        assert t.contains("abc") and t.contains("abd")
        assert not t.contains("ab")
        assert not t.contains("abe")

    def test_shared_prefixes_share_states(self):
        t = Trie()
        t.insert("abc")
        t.insert("abd")
        # root + a + b + c + d = 5 states
        assert t.num_states == 5

    def test_depth(self):
        t = Trie()
        end = t.insert("abc")
        assert t.depth(end) == 3
        assert t.depth(t.root) == 0

    def test_word_of_inverts_insert(self):
        t = Trie()
        end = t.insert(["x", "y", "z"])
        assert t.word_of(end) == ("x", "y", "z")

    def test_word_of_unknown_state(self):
        with pytest.raises(KeyError):
            Trie().word_of(99)

    def test_insert_without_marking(self):
        t = Trie()
        end = t.insert("ab", mark_end=False)
        assert not t.is_word_end(end)
        assert not t.contains("ab")


def example_cfg() -> tuple[Cfg, frozenset]:
    cfg = Cfg(
        edges=[
            (ENTRY, "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
            ("d", "a"),
            ("d", EXIT),
        ]
    )
    return cfg, recording_edges(cfg)


class TestQualificationAutomaton:
    def test_empty_hot_set_has_two_states(self):
        cfg, rec = example_cfg()
        auto = QualificationAutomaton(rec)
        assert auto.num_states == 2  # q_epsilon and q_dot

    def test_transitions_are_total(self):
        cfg, rec = example_cfg()
        hot = [BLPath(("a", "b", "d", EXIT))]
        auto = QualificationAutomaton(rec, hot)
        for state in auto.states():
            for edge in cfg.edges:
                assert auto.transition(state, edge) in range(auto.num_states)

    def test_recording_edge_goes_to_q_dot(self):
        """Theorem 2: on a recording edge the failure function yields q•."""
        cfg, rec = example_cfg()
        hot = [BLPath(("a", "b", "d", "a"))]
        auto = QualificationAutomaton(rec, hot)
        for state in auto.states():
            for edge in rec:
                assert auto.transition(state, edge) == auto.q_dot

    def test_miss_goes_to_q_epsilon(self):
        """Theorem 2: on a non-recording miss the automaton resets to qε."""
        cfg, rec = example_cfg()
        hot = [BLPath(("a", "b", "d", EXIT))]
        auto = QualificationAutomaton(rec, hot)
        # From q_dot, edge (a, c) is not on the hot path and not recording.
        assert auto.transition(auto.q_dot, ("a", "c")) == auto.q_epsilon

    def test_hot_path_spine_is_followed(self):
        cfg, rec = example_cfg()
        hot = [BLPath(("a", "b", "d", EXIT))]
        auto = QualificationAutomaton(rec, hot)
        state = auto.run(auto.q_dot, (("a", "b"), ("b", "d")))
        assert auto.depth(state) == 3  # DOT + two edges
        assert auto.hot_path_at(state) == hot[0]

    def test_trim_drops_final_recording_edge(self):
        path = BLPath(("a", "b", "d", EXIT))
        assert QualificationAutomaton.trim(path) == (("a", "b"), ("b", "d"))

    def test_interior_recording_edge_rejected(self):
        cfg, rec = example_cfg()
        bad = BLPath(("a", "b", "d", "a", "b"))  # contains recording (d, a)
        with pytest.raises(ValueError, match="interior recording"):
            QualificationAutomaton(rec, [bad])

    def test_state_names(self):
        cfg, rec = example_cfg()
        auto = QualificationAutomaton(rec, [BLPath(("a", "b", "d", EXIT))])
        assert auto.state_name(auto.q_epsilon) == "qe"
        assert auto.state_name(auto.q_dot) == "q."

    def test_shared_prefix_paths_share_spine(self):
        cfg, rec = example_cfg()
        hot = [BLPath(("a", "b", "d", EXIT)), BLPath(("a", "b", "d", "a"))]
        auto = QualificationAutomaton(rec, hot)
        # Both trimmed keywords are [DOT, (a,b), (b,d)]: same spine.
        assert auto.num_states == 4


def _transitions_from(table):
    def transitions(state):
        return table.get(state, {})

    return transitions


class TestPartitionRefinement:
    def test_split_on_successor_class(self):
        # s0,s1 both map label 'x' but to states in different classes.
        table = {
            "s0": {"x": "t0"},
            "s1": {"x": "t1"},
            "t0": {},
            "t1": {},
        }
        states = ["s0", "s1", "t0", "t1"]
        initial = [["s0", "s1"], ["t0"], ["t1"]]
        refined = hopcroft_refine(states, initial, _transitions_from(table))
        assert [set(c) for c in refined] == [{"s0"}, {"s1"}, {"t0"}, {"t1"}]

    def test_no_split_when_compatible(self):
        table = {
            "s0": {"x": "t0"},
            "s1": {"x": "t0"},
            "t0": {},
        }
        states = ["s0", "s1", "t0"]
        refined = hopcroft_refine(
            states, [["s0", "s1"], ["t0"]], _transitions_from(table)
        )
        assert [set(c) for c in refined] == [{"s0", "s1"}, {"t0"}]

    def test_partial_maps_split_on_definedness(self):
        table = {"s0": {"x": "t"}, "s1": {}, "t": {}}
        refined = hopcroft_refine(
            ["s0", "s1", "t"], [["s0", "s1"], ["t"]], _transitions_from(table)
        )
        assert {frozenset(c) for c in refined} == {
            frozenset({"s0"}),
            frozenset({"s1"}),
            frozenset({"t"}),
        }

    def test_bad_partition_rejected(self):
        with pytest.raises(ValueError):
            hopcroft_refine(["a"], [["a", "a"]], _transitions_from({}))
        with pytest.raises(ValueError):
            hopcroft_refine(["a", "b"], [["a"]], _transitions_from({}))

    def test_quotient_map(self):
        rep = quotient_map([("a", "b"), ("c",)])
        assert rep == {"a": "a", "b": "a", "c": "c"}

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_hopcroft_equals_moore_on_random_dfas(self, data):
        n = data.draw(st.integers(min_value=1, max_value=10))
        labels = ["x", "y"]
        states = list(range(n))
        table = {}
        for s in states:
            row = {}
            for label in labels:
                if data.draw(st.booleans()):
                    row[label] = data.draw(st.integers(0, n - 1))
            table[s] = row
        # Random initial partition.
        colors = [data.draw(st.integers(0, 2)) for _ in states]
        initial: dict[int, list] = {}
        for s, c in zip(states, colors):
            initial.setdefault(c, []).append(s)
        partition = list(initial.values())
        h = hopcroft_refine(states, partition, _transitions_from(table))
        m = moore_refine(states, partition, _transitions_from(table))
        assert {frozenset(c) for c in h} == {frozenset(c) for c in m}

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_refinement_is_stable(self, data):
        """Refining a refined partition changes nothing."""
        n = data.draw(st.integers(min_value=1, max_value=8))
        states = list(range(n))
        table = {
            s: {"x": data.draw(st.integers(0, n - 1))} for s in states
        }
        refined = hopcroft_refine(states, [states], _transitions_from(table))
        again = hopcroft_refine(states, refined, _transitions_from(table))
        assert refined == again
