"""Hot-path selection tests (§3 step 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiles import BLPath, PathProfile, coverage_of, select_hot_paths

SIZES = {"a": 2, "b": 3, "c": 1, "d": 4}


def profile():
    prof = PathProfile()
    prof.add(BLPath(("a", "b", "c")), 100)  # weight 5 -> 500 instructions
    prof.add(BLPath(("a", "c")), 50)  # weight 2 -> 100
    prof.add(BLPath(("b", "d")), 10)  # weight 3 -> 30
    prof.add(BLPath(("c", "d")), 1)  # weight 1 -> 1
    return prof


class TestSelection:
    def test_zero_coverage_selects_nothing(self):
        assert select_hot_paths(profile(), SIZES, 0.0) == ()

    def test_full_coverage_selects_everything(self):
        assert len(select_hot_paths(profile(), SIZES, 1.0)) == 4

    def test_hottest_first(self):
        hot = select_hot_paths(profile(), SIZES, 0.5)
        assert hot == (BLPath(("a", "b", "c")),)

    def test_minimality(self):
        # 500/631 ≈ 79%; two paths cover 600/631 ≈ 95%.
        hot = select_hot_paths(profile(), SIZES, 0.9)
        assert len(hot) == 2

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            select_hot_paths(profile(), SIZES, 1.5)

    def test_empty_profile(self):
        assert select_hot_paths(PathProfile(), SIZES, 0.97) == ()

    def test_coverage_of(self):
        prof = profile()
        hot = select_hot_paths(prof, SIZES, 0.9)
        assert coverage_of(hot, prof, SIZES) >= 0.9
        assert coverage_of((), prof, SIZES) == 0.0

    def test_deterministic_tie_break(self):
        prof = PathProfile()
        prof.add(BLPath(("a", "b")), 1)
        prof.add(BLPath(("b", "c")), 1)
        first = select_hot_paths(prof, {"a": 1, "b": 1}, 0.4)
        second = select_hot_paths(prof, {"a": 1, "b": 1}, 0.4)
        assert first == second and len(first) == 1


class TestSelectionProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 100)),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_coverage_goal_met_and_minimal(self, paths, ca):
        prof = PathProfile()
        sizes = {}
        for i, (weight, count) in enumerate(paths):
            sizes[f"v{i}"] = weight
            prof.add(BLPath((f"v{i}", "end")), count)
        hot = select_hot_paths(prof, sizes, ca)
        total = prof.total_instructions(sizes)
        covered = sum(p.weight(sizes) * prof.count(p) for p in hot)
        assert covered >= ca * total - 1e-9
        if len(hot) > 1:
            # Dropping the least-weighted selected path breaks the goal.
            reduced = sum(p.weight(sizes) * prof.count(p) for p in hot[:-1])
            assert reduced < ca * total
