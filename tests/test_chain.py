"""Chaining qualified passes: the relabelled profile of a materialized graph
is exactly what instrumenting the materialized function would measure."""

import pytest

from repro.core import run_qualified
from repro.core.chain import (
    materialized_recording_edges,
    profile_for_materialized,
    relabel_profile,
)
from repro.interp import Interpreter
from repro.ir import Cfg
from repro.opt import materialize
from repro.workloads.running_example import (
    running_example_module,
    training_run_inputs,
)


@pytest.fixture(scope="module")
def chained():
    module = running_example_module()
    n, inputs = training_run_inputs()
    run = Interpreter(module).run([n], inputs)
    qa = run_qualified(module.function("work"), run.profiles["work"], ca=1.0)
    fn2 = materialize(qa.reduced)  # unfolded: execution pattern is exact
    profile2, recording2 = profile_for_materialized(qa)
    return module, n, inputs, run, qa, fn2, profile2, recording2


class TestRelabelledProfile:
    def test_recording_edges_acyclify_materialized_cfg(self, chained):
        _, _, _, _, _, fn2, _, recording2 = chained
        cfg2 = Cfg.from_function(fn2)
        for u, v in recording2:
            assert cfg2.has_edge(u, v), (u, v)
        assert cfg2.is_acyclic_without(recording2)

    def test_counts_preserved(self, chained):
        _, _, _, run, _, _, profile2, _ = chained
        assert profile2.total_count == run.profiles["work"].total_count

    def test_matches_an_actual_run_of_the_materialized_code(self, chained):
        """Replace `work` with the materialized function and run the same
        inputs: the relabelled profile's block frequencies must equal the
        real execution counts (frequencies are recording-set invariant, so
        this holds regardless of which recording edges a profiler picks)."""
        module, n, inputs, run, qa, fn2, profile2, recording2 = chained
        new_module = module.copy()
        del new_module.functions["work"]
        new_module.add_function(fn2)
        result = Interpreter(new_module, profile_mode=None).run([n], inputs)
        interp_freq = {
            label: count
            for (fn_name, label), count in result.block_counts.items()
            if fn_name == fn2.name
        }
        relabel_freq = {
            v: c
            for v, c in profile2.block_frequencies().items()
            if v in fn2.blocks
        }
        assert interp_freq == relabel_freq

    def test_second_qualified_pass_runs(self, chained):
        """A second qualified pass over the materialized function, driven by
        the inherited profile/recording edges, keeps the first pass's
        constants."""
        module, n, inputs, run, qa, fn2, profile2, recording2 = chained
        cfg2 = Cfg.from_function(fn2)
        qa2 = run_qualified(
            fn2, profile2, ca=1.0, cfg=cfg2, recording=recording2
        )
        # The second pass re-discovers at least the first pass's constants
        # (x = 6/5/4 at H duplicates) — they are now per-label facts.
        found = set()
        analysis = qa2.final_analysis()
        view_vertices = (
            qa2.reduced.cfg.vertices if qa2.traced else cfg2.vertices
        )
        for v in view_vertices:
            label = v[0] if isinstance(v, tuple) else v
            if isinstance(label, str) and label.startswith("H"):
                consts = analysis.pure_constant_sites(v)
                if 0 in consts:
                    found.add(consts[0])
        assert {4, 5, 6} <= found

    def test_untraced_analysis_rejected(self, example_module, example_profile):
        qa = run_qualified(example_module.function("work"), example_profile, ca=0.0)
        with pytest.raises(ValueError, match="not traced"):
            profile_for_materialized(qa)

    def test_unknown_stage_rejected(self, chained):
        _, _, _, _, qa, _, _, _ = chained
        with pytest.raises(ValueError, match="stage"):
            profile_for_materialized(qa, stage="wibble")

    def test_hpg_stage_also_relabels(self, chained):
        _, _, _, run, qa, _, _, _ = chained
        profile_h, recording_h = profile_for_materialized(qa, stage="hpg")
        fn_h = materialize(qa.hpg)
        cfg_h = Cfg.from_function(fn_h)
        assert cfg_h.is_acyclic_without(recording_h)
        assert profile_h.total_count == run.profiles["work"].total_count
