"""Tests for the IR validator."""

import pytest

from repro.ir import (
    ArrayDecl,
    BasicBlock,
    Branch,
    Call,
    Const,
    Function,
    IRBuilder,
    Jump,
    Load,
    Module,
    Ret,
    ValidationError,
    Var,
    validate_function,
    validate_module,
)


def valid_module() -> Module:
    m = Module()
    m.add_array(ArrayDecl("data", 4))
    b = IRBuilder("main", ["n"])
    b.block("entry")
    b.load("x", "data", 0)
    b.call("r", "abs", "x")
    b.ret("r")
    m.add_function(b.finish())
    return m


def test_valid_module_passes():
    validate_module(valid_module())


def test_missing_main_rejected():
    m = Module()
    b = IRBuilder("helper")
    b.block("entry")
    b.ret()
    m.add_function(b.finish())
    with pytest.raises(ValidationError, match="main"):
        validate_module(m)


def test_empty_function_rejected():
    with pytest.raises(ValidationError, match="no blocks"):
        validate_function(Function("f"))


def test_missing_terminator_rejected():
    fn = Function("f", blocks=[BasicBlock("entry")])
    with pytest.raises(ValidationError, match="terminator"):
        validate_function(fn)


def test_unknown_target_rejected():
    fn = Function("f", blocks=[BasicBlock("entry", [], Jump("nowhere"))])
    with pytest.raises(ValidationError, match="nowhere"):
        validate_function(fn)


def test_degenerate_branch_rejected():
    fn = Function(
        "f",
        blocks=[
            BasicBlock("entry", [], Branch(Var("c"), "next", "next")),
            BasicBlock("next", [], Ret()),
        ],
    )
    with pytest.raises(ValidationError, match="identical targets"):
        validate_function(fn)


def test_unreachable_block_rejected():
    fn = Function(
        "f",
        blocks=[
            BasicBlock("entry", [], Ret()),
            BasicBlock("island", [], Ret()),
        ],
    )
    with pytest.raises(ValidationError, match="unreachable"):
        validate_function(fn)


def test_unknown_array_rejected_with_module():
    m = valid_module()
    m.functions["main"].blocks["entry"].instrs[0] = Load("x", "ghost", Const(0))
    with pytest.raises(ValidationError, match="ghost"):
        validate_module(m)


def test_unknown_callee_rejected_with_module():
    m = valid_module()
    m.functions["main"].blocks["entry"].instrs[1] = Call("r", "ghost", ())
    with pytest.raises(ValidationError, match="ghost"):
        validate_module(m)


def test_builtin_callee_accepted():
    validate_module(valid_module())  # calls abs


def test_bad_entry_label_rejected():
    fn = Function("f", blocks=[BasicBlock("entry", [], Ret())], entry="ghost")
    with pytest.raises(ValidationError, match="entry"):
        validate_function(fn)
