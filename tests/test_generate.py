"""The seeded MiniC program generator: determinism, validity, scale.

Three contracts:

* **determinism** — the same :class:`GeneratorSpec` yields byte-identical
  source and an identical CFG fingerprint, in any process, forever (the
  generator seeds its own ``random.Random``; nothing ambient leaks in);
* **validity** — every generated program parses, passes ``ir/validate``,
  and comes back clean from the full checker pipeline (all IR/PROF/AUT/
  HPG/DF families), because the generator is only useful as a test oracle
  source if its output is unimpeachable;
* **scale and sharpening** — the ``gen-1k`` preset delivers what the
  ROADMAP's organic-workload item requires: >= 1000 CFG vertices,
  checks-clean, and strictly more qualified than iterative non-local
  constants (the paper's core claim, reproduced on generated code).
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_program
from repro.interp import Interpreter
from repro.ir import validate_module
from repro.workloads.generate import (
    GEN_PRESETS,
    GeneratorSpec,
    cfg_fingerprint,
    generate_source,
    generated_workload,
    module_vertices,
    parse_genspec,
    spec_name,
)

FAST_PRESETS = ("gen-small", "gen-loops")


# -- determinism --------------------------------------------------------------


@pytest.mark.parametrize("name", FAST_PRESETS)
def test_same_seed_same_bytes(name):
    spec = GEN_PRESETS[name]
    assert generate_source(spec) == generate_source(spec)


def test_same_seed_same_cfg_hash():
    spec = GEN_PRESETS["gen-small"]
    fps = {
        cfg_fingerprint(compile_program(generate_source(spec)))
        for _ in range(3)
    }
    assert len(fps) == 1


def test_different_seeds_differ():
    from dataclasses import replace

    base = GEN_PRESETS["gen-small"]
    other = replace(base, seed=base.seed + 1)
    assert generate_source(base) != generate_source(other)
    assert cfg_fingerprint(
        compile_program(generate_source(base))
    ) != cfg_fingerprint(compile_program(generate_source(other)))


def test_workload_inputs_deterministic():
    spec = GEN_PRESETS["gen-small"]
    a = generated_workload(spec, "a")
    b = generated_workload(spec, "b")
    assert a.source == b.source
    assert a.train_inputs == b.train_inputs
    assert a.ref_inputs == b.ref_inputs
    assert a.train_args == b.train_args


def test_spec_name_round_trips():
    spec = GeneratorSpec(
        seed=9, funcs=4, blocks_per_func=33, loop_depth=2,
        branch_density=0.4, correlation=0.7,
    )
    assert parse_genspec(spec_name(spec)) == spec


def test_parse_genspec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_genspec("gen:seed=1,bogus=2")
    with pytest.raises(ValueError):
        parse_genspec("not-a-genspec")


def test_spec_validation():
    with pytest.raises(ValueError):
        GeneratorSpec(funcs=0)
    with pytest.raises(ValueError):
        GeneratorSpec(branch_density=1.5)
    with pytest.raises(ValueError):
        GeneratorSpec(correlation=-0.1)


# -- validity -----------------------------------------------------------------


@pytest.mark.parametrize("name", FAST_PRESETS)
def test_presets_compile_validate_and_run(name):
    wl = generated_workload(GEN_PRESETS[name], name)
    module = compile_program(wl.source)
    validate_module(module)
    result = Interpreter(module, profile_mode="bl").run(
        wl.train_args, wl.train_inputs
    )
    assert result.instr_count > 0
    assert any(p.total_count for p in result.profiles.values())


def test_shape_knobs_move_the_shape():
    flat = GeneratorSpec(seed=3, funcs=1, blocks_per_func=30, loop_depth=1)
    deep = GeneratorSpec(seed=3, funcs=1, blocks_per_func=30, loop_depth=3)
    more_funcs = GeneratorSpec(seed=3, funcs=4, blocks_per_func=30)
    m_flat = compile_program(generate_source(flat))
    m_deep = compile_program(generate_source(deep))
    m_more = compile_program(generate_source(more_funcs))
    # loop_depth adds nested while blocks; funcs adds whole routines.
    assert generate_source(deep).count("while") > generate_source(flat).count(
        "while"
    )
    assert len(m_more.functions) == len(m_flat.functions) + 3
    assert module_vertices(m_deep) > module_vertices(m_flat)


@pytest.mark.parametrize("name", FAST_PRESETS)
def test_presets_are_checks_clean(name):
    """Every check family (IR/PROF/AUT/HPG/DF + lints) over the full
    pipeline, no errors and no warnings."""
    from repro.checks.runner import check_program

    wl = generated_workload(GEN_PRESETS[name], name)
    diags = check_program(
        compile_program(wl.source),
        list(wl.train_args),
        wl.train_inputs,
        ca=0.97,
        cr=0.95,
        workload=name,
    )
    assert not diags.has_errors, diags.render_text()
    assert not diags.warnings, diags.render_text()


# -- scale: the organic >=1k-vertex corpus entry ------------------------------


@pytest.mark.slow
def test_gen_1k_is_at_scale_and_sharpens():
    """The acceptance-criteria program: >= 1000 CFG vertices, checks-clean,
    and qualified constant propagation strictly beats Wegman-Zadek."""
    from repro.pipeline.cached_run import make_run

    wl = generated_workload(GEN_PRESETS["gen-1k"], "gen-1k")
    module = compile_program(wl.source)
    assert module_vertices(module) >= 1000

    run = make_run(wl, None, check=True)
    agg = run.aggregate_classification(0.97, 0.95)
    assert agg.qualified_nonlocal > agg.iterative_nonlocal
    assert agg.constant_increase > 0
    diags = run.checker.diagnostics
    assert not diags.has_errors, diags.render_text()


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(GEN_PRESETS))
def test_every_preset_is_checks_clean(name):
    from repro.checks.runner import check_program

    wl = generated_workload(GEN_PRESETS[name], name)
    diags = check_program(
        compile_program(wl.source),
        list(wl.train_args),
        wl.train_inputs,
        ca=0.97,
        cr=0.95,
        workload=name,
    )
    assert not diags.has_errors, diags.render_text()
    assert not diags.warnings, diags.render_text()
